"""The golden retire model: an in-order reference scoreboard.

Every workload engine is deterministic — ``clone()`` restarts the same
stream from position 0 and ``fast_forward(n)`` advances it exactly
``n`` ops (the :class:`~repro.scenarios.base.WorkloadEngine` contract)
— so a trivially-correct in-order model can replay the *same* program
the out-of-order core is running and check, instruction by instruction
at retirement:

* **stream equality** — the retired micro-op is exactly the next op of
  the reference stream (squashes and replays must be invisible);
* **program order** — per-thread retired uids strictly increase and
  retire cycles never decrease;
* **machine-state sanity** — a retired instruction executed, was
  confirmed, and was never squashed;
* **last-writer versioning** — the retiring instruction's
  ``prev_dst_preg`` equals the oracle's committed mapping of its
  architectural destination, which then advances to ``dst_preg`` (the
  commit-time half of rename correctness; the speculative half is
  covered by :class:`repro.verify.invariants.RenameChecker`);
* **ground-truth resolution** — branches carry a prediction and their
  ``mispredicted`` flag matches the generator's ground-truth direction;
  memory operations resolved an address and a cache outcome.

The oracle attaches *after* functional warmup (where the generators have
already been consumed ``emitted`` ops deep) and chains the simulator's
``retire_hook``, so it sees every retirement of detailed simulation
without touching timing.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.isa import OpClass
from repro.verify.invariants import Violation


class GoldenRetireModel:
    """In-order reference model checked against each retirement."""

    name = "oracle"

    #: Full records kept; further violations only count.
    MAX_RECORDED = 25

    def __init__(self) -> None:
        self.violations: List[Violation] = []
        self.violation_count = 0
        self.retired_checked = 0
        self._reference: Dict[int, Any] = {}
        self._committed: Dict[int, List[int]] = {}
        self._last_uid: Dict[int, int] = {}
        self._last_retire_cycle: Dict[int, int] = {}

    def _record(self, cycle: int, message: str, uid: int) -> None:
        self.violation_count += 1
        if len(self.violations) < self.MAX_RECORDED:
            self.violations.append(
                Violation(
                    checker=self.name, cycle=cycle, message=message, uid=uid
                )
            )

    def attach(self, simulator) -> None:
        """Snapshot committed state and start checking retirements.

        Must be called while nothing is in flight (between functional
        warmup and ``run()``); the reference generators fast-forward to
        each thread generator's current position.
        """
        for thread in simulator.threads:
            generator = thread.generator
            reference = generator.clone()
            reference.fast_forward(generator.emitted)
            self._reference[thread.tid] = reference
            self._committed[thread.tid] = list(thread.rename_map.map)
            self._last_uid[thread.tid] = -1
            self._last_retire_cycle[thread.tid] = -1
        previous_hook = simulator.retire_hook

        def hook(inst) -> None:
            self.on_retire(inst)
            if previous_hook is not None:
                previous_hook(inst)

        simulator.retire_hook = hook

    def on_retire(self, inst) -> None:
        """Check one retiring :class:`~repro.isa.DynInst`."""
        self.retired_checked += 1
        tid = inst.thread
        cycle = inst.retire_cycle
        expected = self._reference[tid].next_op()

        if inst.op != expected:
            self._record(
                cycle,
                f"retired op diverges from the reference stream: got "
                f"{inst.op}, expected {expected}",
                uid=inst.uid,
            )
        if inst.uid <= self._last_uid[tid]:
            self._record(
                cycle,
                f"retire order violated: uid {inst.uid} after "
                f"{self._last_uid[tid]}",
                uid=inst.uid,
            )
        self._last_uid[tid] = max(self._last_uid[tid], inst.uid)
        if cycle < self._last_retire_cycle[tid]:
            self._record(
                cycle,
                f"retire cycle {cycle} precedes previous retirement at "
                f"{self._last_retire_cycle[tid]}",
                uid=inst.uid,
            )
        self._last_retire_cycle[tid] = max(
            self._last_retire_cycle[tid], cycle
        )
        if not inst.executed or not inst.confirmed or inst.squashed:
            self._record(
                cycle,
                f"retired in an illegal state (executed={inst.executed}, "
                f"confirmed={inst.confirmed}, squashed={inst.squashed})",
                uid=inst.uid,
            )

        committed = self._committed[tid]
        if inst.op.dst is not None:
            if inst.dst_preg is None:
                self._record(
                    cycle, "retired writer was never renamed", uid=inst.uid
                )
            else:
                if inst.prev_dst_preg != committed[inst.op.dst]:
                    self._record(
                        cycle,
                        f"last-writer chain broken for arch "
                        f"r{inst.op.dst}: prev_dst_preg "
                        f"{inst.prev_dst_preg} != committed "
                        f"{committed[inst.op.dst]}",
                        uid=inst.uid,
                    )
                committed[inst.op.dst] = inst.dst_preg

        if inst.op.opclass is OpClass.BRANCH:
            if inst.predicted_taken is None:
                self._record(
                    cycle, "branch retired without a prediction",
                    uid=inst.uid,
                )
            elif inst.mispredicted != (inst.predicted_taken != expected.taken):
                self._record(
                    cycle,
                    f"mispredict flag disagrees with ground truth "
                    f"(predicted={inst.predicted_taken}, "
                    f"taken={expected.taken}, "
                    f"mispredicted={inst.mispredicted})",
                    uid=inst.uid,
                )
        if inst.op.opclass.is_memory and inst.dcache_hit is None:
            self._record(
                cycle,
                "memory op retired without resolving its cache access",
                uid=inst.uid,
            )
