"""The :class:`Verifier` facade and the per-preset verification sweep.

``Verifier`` bundles the golden retire model, the event-stream invariant
checkers, and the metrics/attribution reconciliation cross-checks into
one object with the attach/finish protocol that
:func:`repro.core.simulate` understands::

    from repro import CoreConfig, simulate
    from repro.verify import Verifier

    verifier = Verifier()
    result = simulate("int_test", CoreConfig.with_dra(), verifier=verifier)
    verifier.raise_if_failed()

:func:`verify_presets` runs that self-checking simulation over every
machine preset, baseline and DRA-equipped, which is what the
``repro verify`` CLI sweep does.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.core.config import CoreConfig, DRAConfig
from repro.errors import ReproError, VerificationError
from repro.obs.attribution import LoopAttribution
from repro.obs.bus import EventBus
from repro.obs.metrics import MetricsCollector
from repro.presets import MACHINE_PRESETS, preset
from repro.verify.invariants import (
    ConservationChecker,
    CRCCoherenceChecker,
    DataflowChecker,
    InvariantChecker,
    RenameChecker,
    Violation,
)
from repro.verify.oracle import GoldenRetireModel


class Verifier:
    """Golden model + invariant checkers + reconciliation, in one attach.

    Parameters
    ----------
    oracle:
        Check every retirement against the in-order golden model.
    invariants:
        Attach the event-stream invariant checkers (conservation,
        rename, dataflow, and — on DRA configs — CRC coherence).
    attribution:
        Cross-check :class:`~repro.obs.metrics.MetricsCollector` event
        counts against :class:`~repro.core.CoreStats` and require the
        loop attribution's useful+lost==total reconciliation.
    """

    def __init__(
        self,
        oracle: bool = True,
        invariants: bool = True,
        attribution: bool = True,
    ) -> None:
        self._want_oracle = oracle
        self._want_invariants = invariants
        self._want_attribution = attribution
        self.oracle: Optional[GoldenRetireModel] = None
        self.checkers: List[InvariantChecker] = []
        self._collector: Optional[MetricsCollector] = None
        self._attribution: Optional[LoopAttribution] = None
        self.violations: List[Violation] = []
        self.violation_count = 0
        self._finished = False

    # --- the simulate() protocol -------------------------------------------

    def attach(self, simulator, bus: EventBus) -> None:
        """Wire everything to one simulator and its event bus.

        Call between functional warmup and the detailed run (exactly
        when :func:`repro.core.simulate` calls it for its ``verifier``
        argument).
        """
        if self._want_invariants:
            self.checkers = [
                ConservationChecker(),
                RenameChecker(),
                DataflowChecker(),
            ]
            if simulator.config.dra is not None:
                self.checkers.append(CRCCoherenceChecker())
            for checker in self.checkers:
                checker.attach(bus)
        if self._want_attribution:
            self._collector = MetricsCollector(bus)
            self._attribution = LoopAttribution(bus, simulator.config)
        if self._want_oracle:
            self.oracle = GoldenRetireModel()
            self.oracle.attach(simulator)

    def finish(self, stats) -> List[Violation]:
        """Run end-of-stream checks and collect every violation."""
        if self._finished:
            return self.violations
        self._finished = True
        for checker in self.checkers:
            checker.finish()
            self.violations.extend(checker.violations)
            self.violation_count += checker.violation_count
        if self.oracle is not None:
            self.violations.extend(self.oracle.violations)
            self.violation_count += self.oracle.violation_count
        if self._collector is not None:
            for mismatch in self._collector.verify_against(stats):
                self.violation_count += 1
                self.violations.append(Violation(
                    checker="metrics", cycle=stats.cycles, message=mismatch,
                ))
        if self._attribution is not None:
            report = self._attribution.report(stats)
            if not report.reconciles:
                self.violation_count += 1
                self.violations.append(Violation(
                    checker="attribution",
                    cycle=stats.cycles,
                    message=(
                        f"cycle ledger does not reconcile: useful "
                        f"{report.useful_cycles} + lost "
                        f"{report.lost_cycles} != total "
                        f"{report.total_cycles}"
                    ),
                ))
        return self.violations

    # --- reporting ----------------------------------------------------------

    @property
    def passed(self) -> bool:
        return self.violation_count == 0

    def report(self) -> str:
        """A human-readable violation summary."""
        if self.passed:
            checked = (
                self.oracle.retired_checked if self.oracle is not None else 0
            )
            return f"all checks passed ({checked} retirements checked)"
        lines = [
            f"{self.violation_count} violation(s), first "
            f"{len(self.violations)} shown:"
        ]
        lines.extend("  " + v.describe() for v in self.violations)
        return "\n".join(lines)

    def raise_if_failed(self, context: str = "") -> None:
        """Raise :class:`~repro.errors.VerificationError` on violations."""
        if self.passed:
            return
        where = f" in {context}" if context else ""
        first = self.violations[0].describe() if self.violations else ""
        raise VerificationError(
            f"{self.violation_count} verification violation(s){where}; "
            f"first: {first}",
            violations=self.violations,
        )


def verified_simulate(workload, config=None, **kwargs):
    """Run :func:`repro.core.simulate` under a fresh :class:`Verifier`.

    Returns ``(result, verifier)``; raises nothing extra — inspect
    ``verifier.violations`` or call ``verifier.raise_if_failed()``.
    """
    from repro.core.simulator import simulate

    verifier = Verifier()
    result = simulate(workload, config, verifier=verifier, **kwargs)
    return result, verifier


@dataclass
class SweepEntry:
    """One preset/config cell of the verification sweep."""

    preset: str
    label: str
    error: Optional[ReproError] = None
    violations: int = 0
    retirements: int = 0
    first_violation: str = ""

    @property
    def ok(self) -> bool:
        return self.error is None and self.violations == 0

    def describe(self) -> str:
        status = "ok"
        if self.error is not None:
            status = f"ERROR {type(self.error).__name__}: {self.error}"
        elif self.violations:
            status = (
                f"FAIL {self.violations} violation(s): "
                f"{self.first_violation}"
            )
        return (
            f"{self.preset:>12s} {self.label:>12s} "
            f"retired={self.retirements:6d} {status}"
        )


def dra_variant(config: CoreConfig) -> CoreConfig:
    """The DRA-equipped form of a preset's base machine (same geometry)."""
    if config.dra is not None:
        return config
    return replace(config, dra=DRAConfig())


def verify_presets(
    workload: str = "int_test",
    instructions: int = 2000,
    warmup: int = 20_000,
    detailed_warmup: int = 500,
    seed: int = 0,
    presets: Optional[List[str]] = None,
) -> List[SweepEntry]:
    """Self-checking runs over every preset, baseline and DRA.

    Each cell simulates ``workload`` under a full :class:`Verifier`;
    the returned entries carry the per-cell violation counts (all zero
    on a healthy tree).
    """
    from repro.core.simulator import simulate

    names = list(presets) if presets is not None else list(MACHINE_PRESETS)
    entries: List[SweepEntry] = []
    for name in names:
        base_config = preset(name)
        for config in (base_config, dra_variant(base_config)):
            entry = SweepEntry(preset=name, label=config.label)
            verifier = Verifier()
            try:
                simulate(
                    workload,
                    config,
                    instructions=instructions,
                    warmup=warmup,
                    detailed_warmup=detailed_warmup,
                    seed=seed,
                    verifier=verifier,
                )
                verifier.raise_if_failed()
            except VerificationError:
                entry.violations = verifier.violation_count
                if verifier.violations:
                    entry.first_violation = verifier.violations[0].describe()
            except ReproError as error:
                entry.error = error
            if verifier.oracle is not None:
                entry.retirements = verifier.oracle.retired_checked
            entries.append(entry)
    return entries
