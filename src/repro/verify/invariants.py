"""Event-stream invariant checkers.

Each checker subscribes to the :class:`~repro.obs.bus.EventBus` of one
detailed-simulation run and rebuilds a small shadow model of the machine
from the events alone; wherever the stream contradicts the shadow model
the checker records a :class:`Violation`.  Nothing here reaches into the
simulator — the checkers see exactly what an external consumer of the
event stream would see, so a passing run certifies both the machine and
its probes.

The catalog (see docs/verification.md):

* :class:`ConservationChecker` — instruction conservation.  Every
  fetched instruction is retired, squashed, dropped from the fetch pipe,
  or still in flight at the end; no instruction retires twice, retires
  after a squash, or is squashed twice.
* :class:`RenameChecker` — rename-map consistency.  Each rename's
  ``prev_dst_preg`` must equal the shadow map's current mapping, no
  physical register is re-allocated while still live, and squashes roll
  the map back youngest-first.
* :class:`DataflowChecker` — ground-truth dataflow timing and
  reissue-tree closure.  A successful execute must see every source
  value available (producer completed with ``avail_cycle <= cycle``); a
  failed execute must be paired with a same-cycle reissue and a later
  re-issue (or squash); an instruction never retires with an unresolved
  replay; a ``load_miss``/``dependent`` reissue must have had a source
  that was genuinely unavailable.
* :class:`CRCCoherenceChecker` (DRA runs only) — RPFT / CRC coherence.
  A pre-read granted by the RPFT implies the register's current version
  had written back; a CRC hit must return the newest version (an entry
  surviving its register's re-allocation is the §5.5 staleness bug); the
  checker mirrors CRC residency from insert/evict/invalidate events and
  flags hits and misses that disagree with it.

All checkers assume the bus is attached from cycle 0 of detailed
simulation (what :func:`repro.core.simulate` does), so the stream covers
every instruction's whole lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.obs.bus import EventBus
from repro.obs.events import (
    CompleteEvent,
    CRCEvent,
    DropEvent,
    ExecuteEvent,
    FetchEvent,
    IssueEvent,
    ReissueEvent,
    RenameEvent,
    RetireEvent,
    SquashEvent,
    WritebackEvent,
)

#: Reissue causes that assert a source value was genuinely unavailable.
_VALUE_CAUSES = ("load_miss", "dependent")


@dataclass(frozen=True)
class Violation:
    """One invariant violation, pinpointed in the event stream."""

    checker: str
    cycle: int
    message: str
    uid: Optional[int] = None

    def describe(self) -> str:
        """One report line."""
        where = f"cycle {self.cycle}"
        if self.uid is not None:
            where += f", uid {self.uid}"
        return f"[{self.checker}] {where}: {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "checker": self.checker,
            "cycle": self.cycle,
            "uid": self.uid,
            "message": self.message,
        }


class InvariantChecker:
    """Base class: violation recording with a cap on stored records."""

    name = "invariant"

    #: Full records kept per checker; further violations only count.
    MAX_RECORDED = 25

    def __init__(self) -> None:
        self.violations: List[Violation] = []
        self.violation_count = 0

    def _record(
        self, cycle: int, message: str, uid: Optional[int] = None
    ) -> None:
        self.violation_count += 1
        if len(self.violations) < self.MAX_RECORDED:
            self.violations.append(
                Violation(
                    checker=self.name, cycle=cycle, message=message, uid=uid
                )
            )

    def attach(self, bus: EventBus) -> None:
        raise NotImplementedError

    def finish(self) -> None:
        """End-of-run checks (defaults to none)."""


class ConservationChecker(InvariantChecker):
    """fetched == retired + squashed + dropped + in flight, per uid."""

    name = "conservation"

    _FETCHED = "fetched"
    _RETIRED = "retired"
    _SQUASHED = "squashed"
    _DROPPED = "dropped"

    def __init__(self) -> None:
        super().__init__()
        #: uid -> lifecycle state (every uid ever fetched stays here).
        self._state: Dict[int, str] = {}
        self.fetched = 0
        self.retired = 0
        self.squashed = 0
        self.dropped = 0
        self._last_cycle = 0

    def attach(self, bus: EventBus) -> None:
        bus.subscribe(FetchEvent, self._on_fetch)
        bus.subscribe(RetireEvent, self._on_retire)
        bus.subscribe(SquashEvent, self._on_squash)
        bus.subscribe(DropEvent, self._on_drop)

    def _on_fetch(self, event: FetchEvent) -> None:
        self._last_cycle = event.cycle
        if event.uid in self._state:
            self._record(
                event.cycle, "uid fetched twice", uid=event.uid
            )
            return
        self._state[event.uid] = self._FETCHED
        self.fetched += 1

    def _terminate(self, event, terminal: str) -> None:
        self._last_cycle = event.cycle
        state = self._state.get(event.uid)
        if state is None:
            self._record(
                event.cycle, f"{terminal} without fetch", uid=event.uid
            )
            return
        if state is not self._FETCHED:
            self._record(
                event.cycle,
                f"{terminal} after already {state}",
                uid=event.uid,
            )
            return
        self._state[event.uid] = terminal

    def _on_retire(self, event: RetireEvent) -> None:
        self._terminate(event, self._RETIRED)
        self.retired += 1

    def _on_squash(self, event: SquashEvent) -> None:
        self._terminate(event, self._SQUASHED)
        self.squashed += 1

    def _on_drop(self, event: DropEvent) -> None:
        self._terminate(event, self._DROPPED)
        self.dropped += 1

    @property
    def in_flight(self) -> int:
        """Instructions fetched but not yet retired/squashed/dropped."""
        return sum(
            1 for state in self._state.values() if state is self._FETCHED
        )

    def finish(self) -> None:
        accounted = self.retired + self.squashed + self.dropped + self.in_flight
        if self.fetched != accounted:
            self._record(
                self._last_cycle,
                f"instruction ledger does not conserve: fetched "
                f"{self.fetched} != retired {self.retired} + squashed "
                f"{self.squashed} + dropped {self.dropped} + in-flight "
                f"{self.in_flight}",
            )


@dataclass
class _RenameRecord:
    thread: int
    arch_dst: int
    dst_preg: int
    prev_dst_preg: int


class RenameChecker(InvariantChecker):
    """Shadow rename map: prev-writer chaining and rollback ordering."""

    name = "rename"

    def __init__(self) -> None:
        super().__init__()
        #: (thread, arch) -> current physical register, learned lazily
        #: from the first rename of each architectural register.
        self._map: Dict[Tuple[int, int], int] = {}
        #: uid -> rename outcome, for rollback and retire-time freeing.
        self._records: Dict[int, _RenameRecord] = {}
        #: physical registers currently allocated to in-flight writers.
        self._live: Set[int] = set()

    def attach(self, bus: EventBus) -> None:
        bus.subscribe(RenameEvent, self._on_rename)
        bus.subscribe(RetireEvent, self._on_retire)
        bus.subscribe(SquashEvent, self._on_squash)

    def _on_rename(self, event: RenameEvent) -> None:
        if event.arch_dst < 0:
            return
        key = (event.thread, event.arch_dst)
        known = self._map.get(key)
        if known is not None and known != event.prev_dst_preg:
            self._record(
                event.cycle,
                f"prev_dst_preg {event.prev_dst_preg} does not chain from "
                f"the current mapping {known} of arch r{event.arch_dst}",
                uid=event.uid,
            )
        if event.dst_preg in self._live:
            self._record(
                event.cycle,
                f"physical register {event.dst_preg} re-allocated while "
                f"its previous writer is still in flight",
                uid=event.uid,
            )
        self._map[key] = event.dst_preg
        self._live.add(event.dst_preg)
        self._records[event.uid] = _RenameRecord(
            thread=event.thread,
            arch_dst=event.arch_dst,
            dst_preg=event.dst_preg,
            prev_dst_preg=event.prev_dst_preg,
        )

    def _on_retire(self, event: RetireEvent) -> None:
        record = self._records.pop(event.uid, None)
        if record is None:
            return
        # retirement frees the *previous* mapping; the new one becomes
        # the committed version
        self._live.discard(record.prev_dst_preg)

    def _on_squash(self, event: SquashEvent) -> None:
        record = self._records.pop(event.uid, None)
        if record is None:
            return
        key = (record.thread, record.arch_dst)
        current = self._map.get(key)
        if current != record.dst_preg:
            self._record(
                event.cycle,
                f"squash rollback out of order: arch r{record.arch_dst} "
                f"maps to {current}, expected {record.dst_preg}",
                uid=event.uid,
            )
        self._map[key] = record.prev_dst_preg
        self._live.discard(record.dst_preg)


class DataflowChecker(InvariantChecker):
    """Ground-truth operand timing and reissue-tree closure."""

    name = "dataflow"

    def __init__(self) -> None:
        super().__init__()
        #: preg -> stack of in-flight writer uids (youngest last).  An
        #: empty/missing stack means the committed version: available.
        self._writers: Dict[int, List[int]] = {}
        #: uid -> (src_pregs, dst_preg) from rename.
        self._renamed: Dict[int, Tuple[Tuple[int, ...], int]] = {}
        #: uid -> result availability cycle (CompleteEvent).
        self._avail: Dict[int, int] = {}
        #: uid -> epoch of the last IssueEvent.
        self._issued_epoch: Dict[int, int] = {}
        #: uid -> issue epoch that failed and awaits its re-issue.
        self._pending_reissue: Dict[int, int] = {}
        #: uid -> cycle of an ok=False execute awaiting its ReissueEvent.
        self._expect_reissue: Dict[int, int] = {}
        self._last_cycle = 0

    def attach(self, bus: EventBus) -> None:
        bus.subscribe(RenameEvent, self._on_rename)
        bus.subscribe(IssueEvent, self._on_issue)
        bus.subscribe(ExecuteEvent, self._on_execute)
        bus.subscribe(ReissueEvent, self._on_reissue)
        bus.subscribe(CompleteEvent, self._on_complete)
        bus.subscribe(RetireEvent, self._on_retire)
        bus.subscribe(SquashEvent, self._on_squash)

    # --- availability model ------------------------------------------------

    def _source_available(self, preg: int, cycle: int) -> bool:
        """Whether ``preg``'s newest version is available at ``cycle``.

        Mirrors the machine's ground truth: the committed version (no
        observed in-flight writer) is always available; an in-flight
        version is available once its producer completed with
        ``avail_cycle <= cycle``.
        """
        stack = self._writers.get(preg)
        if not stack:
            return True
        avail = self._avail.get(stack[-1])
        return avail is not None and avail <= cycle

    # --- handlers ----------------------------------------------------------

    def _on_rename(self, event: RenameEvent) -> None:
        self._last_cycle = event.cycle
        self._renamed[event.uid] = (event.src_pregs, event.dst_preg)
        if event.dst_preg >= 0:
            self._writers.setdefault(event.dst_preg, []).append(event.uid)

    def _on_issue(self, event: IssueEvent) -> None:
        self._last_cycle = event.cycle
        previous = self._issued_epoch.get(event.uid, 0)
        if event.epoch != previous + 1:
            self._record(
                event.cycle,
                f"issue epoch {event.epoch} does not follow {previous}",
                uid=event.uid,
            )
        self._issued_epoch[event.uid] = event.epoch
        pending = self._pending_reissue.pop(event.uid, None)
        if pending is not None and event.epoch <= pending:
            self._record(
                event.cycle,
                f"re-issue epoch {event.epoch} not newer than the failed "
                f"epoch {pending}",
                uid=event.uid,
            )

    def _on_execute(self, event: ExecuteEvent) -> None:
        self._last_cycle = event.cycle
        if not event.ok:
            self._expect_reissue[event.uid] = event.cycle
            return
        entry = self._renamed.get(event.uid)
        if entry is None:
            return  # not renamed under observation (cannot happen when
            # the bus is attached from cycle 0)
        src_pregs, _ = entry
        for preg in src_pregs:
            if not self._source_available(preg, event.cycle):
                self._record(
                    event.cycle,
                    f"executed ok with unavailable operand preg {preg} "
                    f"(producer has not completed by cycle {event.cycle})",
                    uid=event.uid,
                )

    def _on_reissue(self, event: ReissueEvent) -> None:
        expected_at = self._expect_reissue.pop(event.uid, None)
        if expected_at is None or expected_at != event.cycle:
            self._record(
                event.cycle,
                "reissue without a same-cycle failed execute",
                uid=event.uid,
            )
        self._pending_reissue[event.uid] = self._issued_epoch.get(event.uid, 0)
        if event.cause in _VALUE_CAUSES:
            entry = self._renamed.get(event.uid)
            if entry is not None:
                src_pregs, _ = entry
                if all(
                    self._source_available(preg, event.cycle)
                    for preg in src_pregs
                ):
                    self._record(
                        event.cycle,
                        f"{event.cause} reissue but every source value "
                        f"was available",
                        uid=event.uid,
                    )

    def _on_complete(self, event: CompleteEvent) -> None:
        self._avail[event.uid] = event.avail_cycle

    def _forget(self, uid: int) -> None:
        self._issued_epoch.pop(uid, None)
        self._pending_reissue.pop(uid, None)
        self._expect_reissue.pop(uid, None)

    def _on_retire(self, event: RetireEvent) -> None:
        self._last_cycle = event.cycle
        if event.uid in self._pending_reissue \
                or event.uid in self._expect_reissue:
            self._record(
                event.cycle,
                "retired with an unresolved replay (reissue tree not "
                "closed)",
                uid=event.uid,
            )
        entry = self._renamed.get(event.uid)
        if entry is not None and event.uid not in self._avail:
            self._record(
                event.cycle, "retired without completing", uid=event.uid
            )
        self._forget(event.uid)

    def _on_squash(self, event: SquashEvent) -> None:
        self._last_cycle = event.cycle
        entry = self._renamed.pop(event.uid, None)
        if entry is not None:
            _, dst_preg = entry
            if dst_preg >= 0:
                stack = self._writers.get(dst_preg)
                if stack and stack[-1] == event.uid:
                    stack.pop()
                else:
                    self._record(
                        event.cycle,
                        f"squash of a non-youngest writer of preg "
                        f"{dst_preg}",
                        uid=event.uid,
                    )
        self._forget(event.uid)
        self._avail.pop(event.uid, None)

    def finish(self) -> None:
        for uid, cycle in self._expect_reissue.items():
            self._record(
                cycle,
                "failed execute never produced its ReissueEvent",
                uid=uid,
            )


class CRCCoherenceChecker(InvariantChecker):
    """RPFT pre-read correctness and CRC version coherence (DRA runs)."""

    name = "crc"

    def __init__(self) -> None:
        super().__init__()
        #: preg -> allocation version; registers never seen allocated
        #: are version 0 (the committed initial state, written back).
        self._alloc_version: Dict[int, int] = {}
        #: preg -> allocation version at its last writeback.
        self._wb_version: Dict[int, int] = {}
        #: cluster -> {preg: allocation version at CRC insert}.
        self._resident: Dict[int, Dict[int, int]] = {}

    def attach(self, bus: EventBus) -> None:
        bus.subscribe(RenameEvent, self._on_rename)
        bus.subscribe(WritebackEvent, self._on_writeback)
        bus.subscribe(CRCEvent, self._on_crc)

    def _version(self, preg: int) -> int:
        return self._alloc_version.get(preg, 0)

    def _completed(self, preg: int) -> bool:
        """Whether ``preg``'s current version has written back."""
        if preg not in self._alloc_version:
            return True  # initial committed state
        return self._wb_version.get(preg) == self._alloc_version[preg]

    def _on_rename(self, event: RenameEvent) -> None:
        # source pre-read decisions are checked against the *pre-rename*
        # state, so sources first, then the destination re-allocation
        for preg, preread in zip(event.src_pregs, event.preread):
            completed = self._completed(preg)
            if preread and not completed:
                self._record(
                    event.cycle,
                    f"pre-read granted for preg {preg} whose value has "
                    f"not written back (RPFT should have filtered it)",
                    uid=event.uid,
                )
            elif not preread and completed:
                self._record(
                    event.cycle,
                    f"RPFT filtered preg {preg} although its value is "
                    f"in the register file",
                    uid=event.uid,
                )
        if event.dst_preg >= 0:
            self._alloc_version[event.dst_preg] = (
                self._version(event.dst_preg) + 1
            )

    def _on_writeback(self, event: WritebackEvent) -> None:
        self._wb_version[event.preg] = self._version(event.preg)

    def _on_crc(self, event: CRCEvent) -> None:
        resident = self._resident.setdefault(event.cluster, {})
        if event.action == "insert":
            resident[event.preg] = self._version(event.preg)
        elif event.action in ("invalidate", "evict"):
            if event.preg not in resident:
                self._record(
                    event.cycle,
                    f"CRC {event.action} of non-resident preg "
                    f"{event.preg} in cluster {event.cluster}",
                )
            resident.pop(event.preg, None)
        elif event.action == "hit":
            version = resident.get(event.preg)
            if version is None:
                self._record(
                    event.cycle,
                    f"CRC hit on non-resident preg {event.preg} in "
                    f"cluster {event.cluster}",
                )
            elif version != self._version(event.preg):
                self._record(
                    event.cycle,
                    f"stale CRC hit: preg {event.preg} entry is version "
                    f"{version}, current version is "
                    f"{self._version(event.preg)} (missing §5.5 "
                    f"invalidation)",
                )
        elif event.action == "miss":
            version = resident.get(event.preg)
            if version is not None and version == self._version(event.preg):
                self._record(
                    event.cycle,
                    f"CRC miss although preg {event.preg} is resident "
                    f"with the current version in cluster {event.cluster}",
                )
