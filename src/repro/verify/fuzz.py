"""Workload/configuration fuzzer with a delta-debugging shrinker.

The fuzzer drives the full verification stack (golden retire model +
event-stream invariant checkers, :mod:`repro.verify.runner`) over
randomly generated machine configurations and workload profiles, then
*shrinks* any failing case — fewer instructions, fewer non-default
knobs, a simpler profile — until it is minimal, and writes a replayable
JSON reproducer.

Every case is fully deterministic: a :class:`FuzzCase` serialises the
complete workload profile and every configuration override, so
``python -m repro verify --replay case.json`` rebuilds the identical
micro-op stream and timing.  The reproducer also embeds the first
micro-ops of the stream; replay cross-checks them against the
regenerated stream so a stale reproducer fails loudly instead of
silently testing a different program.

Fault injections (``--inject``) plant known bugs to prove the checkers
and the shrinker actually work:

* ``skip-reissue`` — the first operand fault is swallowed: the
  instruction executes with a stale source instead of reissuing
  (a broken load-resolution loop).  Caught by the dataflow checker
  and the event/stat reconciliation.
* ``stale-crc`` — one register re-allocation skips the §5.5 CRC
  invalidation, leaving a stale copy a later consumer can hit.
  Caught by the CRC coherence checker.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional

from repro.core.config import CoreConfig, DRAConfig, LoadRecovery
from repro.errors import ReproError
from repro.isa import OpClass
from repro.obs.bus import EventBus
from repro.verify.runner import Verifier
from repro.workloads import SyntheticTraceGenerator, WorkloadProfile
from repro.workloads.mix import InstructionMix
from repro.workloads.profiles import (
    SMOKE_PROFILES,
    BranchModel,
    DependencyModel,
    MemoryModel,
)

#: Reproducer file format version.
REPRODUCER_VERSION = 1

#: Cycle budget per simulated instruction before a case counts as
#: making no progress (well under the pipeline's deadlock window, so a
#: livelocked case fails fast instead of hanging the fuzz loop).
_CYCLES_PER_INST = 100
_MIN_CYCLES = 2_000


# ---------------------------------------------------------------------------
# Case representation and (de)serialisation
# ---------------------------------------------------------------------------


def profile_to_dict(profile: WorkloadProfile) -> Dict[str, Any]:
    """Serialise a profile to plain JSON types."""
    return {
        "name": profile.name,
        "mix": {
            opclass.value: frac for opclass, frac in profile.mix.items()
        },
        "branches": asdict(profile.branches),
        "memory": asdict(profile.memory),
        "deps": asdict(profile.deps),
    }


def profile_from_dict(data: Dict[str, Any]) -> WorkloadProfile:
    """Rebuild a :class:`WorkloadProfile` serialised by
    :func:`profile_to_dict`.

    The mix entries are sorted by op-class name before constructing the
    :class:`InstructionMix`: its sampling depends on entry order, and a
    JSON round-trip (``sort_keys=True``) would otherwise change the
    generated stream between a fuzzed case and its reproducer.
    """
    return WorkloadProfile(
        name=data["name"],
        mix=InstructionMix(
            {
                OpClass(key): frac
                for key, frac in sorted(data["mix"].items())
            }
        ),
        branches=BranchModel(**data["branches"]),
        memory=MemoryModel(**data["memory"]),
        deps=DependencyModel(**data["deps"]),
    )


@dataclass
class FuzzCase:
    """One self-contained, replayable fuzz input."""

    seed: int
    instructions: int
    #: ``"base"`` or ``"dra"`` — which CoreConfig factory to start from.
    kind: str
    #: RF read latency fed to the factory.
    rf_read_latency: int
    #: CoreConfig field overrides applied on top of the factory output.
    config: Dict[str, Any] = field(default_factory=dict)
    #: DRAConfig field overrides (``kind == "dra"`` only).
    dra: Dict[str, Any] = field(default_factory=dict)
    profile: Dict[str, Any] = field(default_factory=dict)
    #: Optional dynamic-workload wrapper: ``{"pattern": ..., "period": ...}``
    #: turns the profile into a phase-varying schedule (empty = static).
    scenario: Dict[str, Any] = field(default_factory=dict)

    def build_config(self) -> CoreConfig:
        overrides = dict(self.config)
        if "load_recovery" in overrides:
            overrides["load_recovery"] = LoadRecovery(
                overrides["load_recovery"]
            )
        if self.kind == "dra":
            return CoreConfig.with_dra(
                self.rf_read_latency,
                dra=replace(DRAConfig(), **self.dra),
                **overrides,
            )
        return CoreConfig.base(self.rf_read_latency, **overrides)

    def build_profile(self) -> WorkloadProfile:
        return profile_from_dict(self.profile)

    def build_entry(self):
        """The workload entry handed to the simulator: the plain profile,
        or — when ``scenario`` is set — a phase-varying engine spec over
        it, so the fuzzer exercises the dynamic supply path too."""
        profile = self.build_profile()
        if not self.scenario:
            return profile
        from repro.scenarios.dynamic import DynamicSpec, PhaseSchedule

        return DynamicSpec(PhaseSchedule.from_pattern(
            profile,
            self.scenario["pattern"],
            period=int(self.scenario.get("period", 1024)),
        ))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "instructions": self.instructions,
            "kind": self.kind,
            "rf_read_latency": self.rf_read_latency,
            "config": dict(self.config),
            "dra": dict(self.dra),
            "profile": dict(self.profile),
            "scenario": dict(self.scenario),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FuzzCase":
        return cls(
            seed=int(data["seed"]),
            instructions=int(data["instructions"]),
            kind=data["kind"],
            rf_read_latency=int(data["rf_read_latency"]),
            config=dict(data.get("config", {})),
            dra=dict(data.get("dra", {})),
            profile=dict(data["profile"]),
            scenario=dict(data.get("scenario", {})),
        )


@dataclass
class FuzzFailure:
    """Why a case failed: checker violations, an exception, or no
    forward progress."""

    kind: str                      # "violations" | "error" | "no_progress"
    detail: str
    violations: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "violations": list(self.violations),
        }


# ---------------------------------------------------------------------------
# Fault injections (planted bugs for checker/shrinker validation)
# ---------------------------------------------------------------------------


def _inject_skip_reissue(simulator) -> None:
    """Swallow the first operand fault: execute with a stale source.

    Marks the unavailable sources ``payload_valid`` so the DRA's
    operand-location step cannot independently catch the miss — the
    instruction genuinely executes with a value that was never
    computed, exactly the bug a broken load-resolution loop causes.
    """
    original = simulator._operand_fault
    state = {"armed": True}

    def wrapped(inst, cycle):
        fault = original(inst, cycle)
        if fault is not None and state["armed"]:
            state["armed"] = False
            avail = simulator.regfile.avail
            for idx, preg in enumerate(inst.src_pregs):
                value_time = avail[preg]
                if value_time is None or value_time > cycle:
                    if idx < len(inst.payload_valid):
                        inst.payload_valid[idx] = True
            return None
        return fault

    simulator._operand_fault = wrapped


def _inject_stale_crc(simulator) -> None:
    """Skip one §5.5 CRC invalidation on register re-allocation."""
    dra = simulator.dra
    if dra is None:
        return
    original = dra.on_allocate
    state = {"armed": True}

    def wrapped(preg):
        if state["armed"] and any(crc.contains(preg) for crc in dra.crcs):
            state["armed"] = False
            # the non-buggy parts of re-allocation still happen
            dra.rpft.on_allocate(preg)
            for table in dra.tables:
                table.clear(preg)
            return
        original(preg)

    dra.on_allocate = wrapped


INJECTIONS: Dict[str, Callable] = {
    "skip-reissue": _inject_skip_reissue,
    "stale-crc": _inject_stale_crc,
}


# ---------------------------------------------------------------------------
# Case execution
# ---------------------------------------------------------------------------


def run_case(
    case: FuzzCase,
    inject: Optional[str] = None,
    backend: str = "reference",
) -> Optional[FuzzFailure]:
    """Run one case under the full verifier; ``None`` means it passed."""
    from repro.core.backend import parse_backend

    kernel = parse_backend(backend)
    if not kernel.exact:
        raise ReproError(
            f"fuzz cases verify retire streams and need an exact kernel "
            f"backend (got {kernel.token!r})"
        )
    try:
        config = case.build_config()
        entry = case.build_entry()
    except (ValueError, KeyError) as error:
        # an invalid case is a generator bug, not a simulator bug
        raise ReproError(f"unbuildable fuzz case: {error}") from error
    simulator = kernel.build(config, [entry], seed=case.seed)
    bus = EventBus()
    verifier = Verifier()
    verifier.attach(simulator, bus)
    simulator.attach_obs(bus)
    if inject is not None:
        INJECTIONS[inject](simulator)
    max_cycles = max(_MIN_CYCLES, case.instructions * _CYCLES_PER_INST)
    try:
        simulator.run(case.instructions, warmup=0, max_cycles=max_cycles)
    except ReproError as error:
        return FuzzFailure(
            kind="error", detail=f"{type(error).__name__}: {error}"
        )
    verifier.finish(simulator.stats)
    if not verifier.passed:
        return FuzzFailure(
            kind="violations",
            detail=verifier.violations[0].describe()
            if verifier.violations
            else f"{verifier.violation_count} violation(s)",
            violations=[v.to_dict() for v in verifier.violations],
        )
    if simulator.stats.retired < case.instructions:
        return FuzzFailure(
            kind="no_progress",
            detail=(
                f"retired {simulator.stats.retired}/{case.instructions} "
                f"within {max_cycles} cycles"
            ),
        )
    return None


# ---------------------------------------------------------------------------
# Random case generation
# ---------------------------------------------------------------------------


def _random_profile(rng: random.Random) -> Dict[str, Any]:
    """A random — but always valid — workload profile, serialised."""
    branch = round(rng.uniform(0.02, 0.20), 3)
    load = round(rng.uniform(0.10, 0.35), 3)
    store = round(rng.uniform(0.03, 0.15), 3)
    fp = round(rng.uniform(0.0, 0.3), 3)
    alu = max(0.02, 1.0 - branch - load - store - fp)
    mix = {
        OpClass.INT_ALU.value: alu,
        OpClass.LOAD.value: load,
        OpClass.STORE.value: store,
        OpClass.BRANCH.value: branch,
    }
    if fp > 0.005:
        mix[OpClass.FP_ADD.value] = fp * 0.5
        mix[OpClass.FP_MUL.value] = fp * 0.5
    hot = round(rng.uniform(0.45, 0.92), 3)
    warm = round(rng.uniform(0.02, min(0.3, 0.97 - hot)), 3)
    cold = round(rng.uniform(0.0, min(0.2, 0.99 - hot - warm)), 3)
    stream = 1.0 - hot - warm - cold
    return {
        "name": "fuzz",
        "mix": mix,
        "branches": asdict(
            BranchModel(
                num_sites=rng.choice([8, 32, 128, 512]),
                loop_site_frac=round(rng.uniform(0.2, 0.95), 2),
                loop_trip=rng.choice([2, 8, 32]),
                random_bias_lo=0.6,
                random_bias_hi=round(rng.uniform(0.6, 0.99), 2),
                indirect_frac=round(rng.uniform(0.0, 0.15), 2),
            )
        ),
        "memory": asdict(
            MemoryModel(
                hot_frac=hot,
                warm_frac=warm,
                cold_frac=cold,
                stream_frac=stream,
                hot_bytes=rng.choice([4, 16, 64]) * 1024,
                warm_bytes=rng.choice([128, 512]) * 1024,
                cold_pages=rng.choice([64, 1024]),
                page_dwell=rng.choice([2, 64]),
                stream_stride=rng.choice([8, 16, 64]),
                alias_site_frac=round(rng.uniform(0.0, 0.2), 2),
            )
        ),
        "deps": asdict(
            DependencyModel(
                strands=rng.choice([1, 2, 8, 24]),
                chain_frac=round(rng.uniform(0.1, 0.9), 2),
                near_mean=float(rng.choice([1.5, 4.0, 8.0])),
                far_frac=round(rng.uniform(0.0, 0.3), 2),
                far_lo=30,
                far_hi=rng.choice([60, 120, 240]),
                two_src_frac=round(rng.uniform(0.3, 0.8), 2),
                global_frac=round(rng.uniform(0.0, 0.2), 2),
                num_globals=rng.choice([1, 4, 8]),
                fanout_burst_frac=round(rng.uniform(0.0, 0.1), 2),
                fanout_burst_len=rng.choice([2, 8, 64]),
            )
        ),
    }


#: Randomisable CoreConfig knobs and their value pools.  Geometry knobs
#: that must move together (issue_width == num_clusters,
#: num_pregs >= 128 + rob_entries) are handled explicitly.
_CONFIG_POOLS: Dict[str, List[Any]] = {
    "fetch_width": [4, 8],
    "retire_width": [4, 8],
    "iq_entries": [32, 64, 128],
    "fb_depth": [4, 9, 14],
    "iq_feedback_delay": [1, 3, 5],
    "iq_clear_cycles": [0, 1],
    "branch_feedback_delay": [1, 3],
    "load_fill_wake_lead": [0, 2],
    "load_recovery": [
        LoadRecovery.REISSUE.value,
        LoadRecovery.REFETCH.value,
        LoadRecovery.STALL.value,
    ],
    "slotting": ["dependence", "round_robin"],
}

_DRA_POOLS: Dict[str, List[Any]] = {
    "crc_entries": [4, 16, 64],
    "counter_bits": [1, 2, 4],
    "payload_transit": [0, 2],
    "frontend_stall": [0, 1],
    "centralized": [False, True],
    "shadow_fb_decrement": [False, True],
    "oracle_crc": [False, True],
}


def random_case(
    rng: random.Random, max_instructions: int = 400
) -> FuzzCase:
    """Draw one random case (valid by construction)."""
    kind = rng.choice(["base", "dra"])
    config: Dict[str, Any] = {}
    for knob, pool in _CONFIG_POOLS.items():
        if rng.random() < 0.35:
            config[knob] = rng.choice(pool)
    if rng.random() < 0.35:
        clusters = rng.choice([4, 8])
        config["num_clusters"] = clusters
        config["issue_width"] = clusters
    if rng.random() < 0.35:
        rob = rng.choice([64, 128, 256])
        config["rob_entries"] = rob
        config["num_pregs"] = rng.choice([rob + 128, rob + 512])
    dra: Dict[str, Any] = {}
    if kind == "dra":
        for knob, pool in _DRA_POOLS.items():
            if rng.random() < 0.35:
                dra[knob] = rng.choice(pool)
    scenario: Dict[str, Any] = {}
    if rng.random() < 0.25:
        from repro.scenarios.dynamic import PATTERNS

        # short periods so even small cases cross phase boundaries
        scenario = {
            "pattern": rng.choice(sorted(PATTERNS)),
            "period": rng.choice([256, 512, 2048]),
        }
    return FuzzCase(
        seed=rng.randrange(1 << 30),
        instructions=rng.randrange(50, max_instructions + 1),
        kind=kind,
        rf_read_latency=rng.choice([1, 3, 5, 7]),
        config=config,
        dra=dra,
        profile=_random_profile(rng),
        scenario=scenario,
    )


def canonical_cases(max_instructions: int = 400) -> List[FuzzCase]:
    """Deterministic seed cases tried before random exploration.

    The smoke profile on the default base and DRA machines: cheap,
    covers both pipelines, and (running cold-cache) provokes load
    misses — so planted load-loop bugs trip on case one or two instead
    of depending on the random draw.
    """
    profile = profile_to_dict(SMOKE_PROFILES["int_test"])
    count = min(300, max_instructions)
    return [
        FuzzCase(
            seed=7, instructions=count, kind="base",
            rf_read_latency=3, profile=dict(profile),
        ),
        FuzzCase(
            seed=7, instructions=count, kind="dra",
            rf_read_latency=3, profile=dict(profile),
        ),
    ]


# ---------------------------------------------------------------------------
# Shrinking (delta debugging)
# ---------------------------------------------------------------------------


def _shrink_instructions(
    case: FuzzCase,
    inject: Optional[str],
    deadline: Optional[float],
) -> FuzzCase:
    """Binary-search the smallest failing instruction count."""
    best = case
    lo, hi = 1, case.instructions
    while lo < hi:
        if deadline is not None and time.monotonic() > deadline:
            break
        mid = (lo + hi) // 2
        candidate = replace(best, instructions=mid)
        if run_case(candidate, inject) is not None:
            best, hi = candidate, mid
        else:
            lo = mid + 1
    return best


def _shrink_mapping(
    case: FuzzCase,
    which: str,
    inject: Optional[str],
    deadline: Optional[float],
) -> FuzzCase:
    """Greedily drop override knobs (reset toward defaults)."""
    best = case
    changed = True
    passes = 0
    while changed and passes < 3:
        changed = False
        passes += 1
        for knob in list(getattr(best, which)):
            if deadline is not None and time.monotonic() > deadline:
                return best
            reduced = dict(getattr(best, which))
            del reduced[knob]
            candidate = replace(best, **{which: reduced})
            try:
                failed = run_case(candidate, inject) is not None
            except ReproError:
                # dropping one half of a coupled knob pair can make the
                # config invalid; keep the knob
                continue
            if failed:
                best = candidate
                changed = True
    return best


def _shrink_profile(
    case: FuzzCase,
    inject: Optional[str],
    deadline: Optional[float],
) -> FuzzCase:
    """Replace the profile (or its sub-models) with simple defaults."""
    best = case
    reference = profile_to_dict(SMOKE_PROFILES["int_test"])
    # whole-profile swap first — the biggest simplification
    if best.profile != reference:
        candidate = replace(best, profile=dict(reference))
        try:
            if run_case(candidate, inject) is not None:
                return candidate
        except ReproError:
            pass
    for part in ("branches", "memory", "deps", "mix"):
        if deadline is not None and time.monotonic() > deadline:
            return best
        if best.profile.get(part) == reference[part]:
            continue
        simplified = dict(best.profile)
        simplified[part] = reference[part]
        candidate = replace(best, profile=simplified)
        try:
            if run_case(candidate, inject) is not None:
                best = candidate
        except ReproError:
            continue
    return best


def _shrink_scenario(
    case: FuzzCase,
    inject: Optional[str],
    deadline: Optional[float],
) -> FuzzCase:
    """Try dropping the dynamic-workload wrapper (static is simpler)."""
    if not case.scenario:
        return case
    if deadline is not None and time.monotonic() > deadline:
        return case
    candidate = replace(case, scenario={})
    try:
        if run_case(candidate, inject) is not None:
            return candidate
    except ReproError:
        pass
    return case


def shrink(
    case: FuzzCase,
    inject: Optional[str] = None,
    deadline: Optional[float] = None,
) -> FuzzCase:
    """Shrink a failing case to a (locally) minimal failing case.

    Every intermediate candidate is re-run under the same injection;
    the returned case is guaranteed to still fail.
    """
    if run_case(case, inject) is None:
        raise ValueError("shrink() requires a failing case")
    best = _shrink_instructions(case, inject, deadline)
    best = _shrink_mapping(best, "config", inject, deadline)
    best = _shrink_mapping(best, "dra", inject, deadline)
    best = _shrink_scenario(best, inject, deadline)
    best = _shrink_profile(best, inject, deadline)
    best = _shrink_instructions(best, inject, deadline)
    return best


# ---------------------------------------------------------------------------
# Reproducers
# ---------------------------------------------------------------------------


def _micro_ops(case: FuzzCase) -> List[Dict[str, Any]]:
    """The case's first micro-ops, serialised for the reproducer."""
    entry = case.build_entry()
    if hasattr(entry, "build_engine"):
        generator = entry.build_engine(seed=case.seed, thread=0)
    else:
        generator = SyntheticTraceGenerator(entry, seed=case.seed, thread=0)
    ops = []
    for _ in range(min(case.instructions, 200)):
        op = generator.next_op()
        ops.append({
            "pc": op.pc,
            "opclass": op.opclass.value,
            "srcs": list(op.srcs),
            "dst": op.dst,
            "address": op.address,
            "taken": op.taken,
            "target": op.target,
        })
    return ops


def make_reproducer(
    case: FuzzCase,
    failure: FuzzFailure,
    inject: Optional[str] = None,
) -> Dict[str, Any]:
    """The JSON document ``repro verify --replay`` consumes."""
    return {
        "version": REPRODUCER_VERSION,
        "inject": inject,
        "case": case.to_dict(),
        "failure": failure.to_dict(),
        "micro_ops": _micro_ops(case),
    }


def write_reproducer(path: str, reproducer: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(reproducer, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_reproducer(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("version") != REPRODUCER_VERSION:
        raise ReproError(
            f"unsupported reproducer version {data.get('version')!r} "
            f"(expected {REPRODUCER_VERSION})"
        )
    return data


def replay(path: str) -> Optional[FuzzFailure]:
    """Re-run a reproducer; ``None`` means the failure no longer occurs.

    Cross-checks the stored micro-op prefix against the regenerated
    stream first, so a reproducer from an incompatible generator
    version fails loudly rather than silently replaying a different
    program.
    """
    data = load_reproducer(path)
    case = FuzzCase.from_dict(data["case"])
    stored = data.get("micro_ops", [])
    if stored:
        regenerated = _micro_ops(case)
        for index, (want, got) in enumerate(zip(stored, regenerated)):
            if want != got:
                raise ReproError(
                    f"reproducer stream diverges at op {index}: stored "
                    f"{want} but the generator now emits {got} — the "
                    f"workload generator has changed; re-fuzz"
                )
    return run_case(case, inject=data.get("inject"))


# ---------------------------------------------------------------------------
# The fuzz loop
# ---------------------------------------------------------------------------


@dataclass
class FuzzResult:
    """Outcome of one :func:`fuzz` run."""

    found: bool
    cases_run: int
    case: Optional[FuzzCase] = None
    failure: Optional[FuzzFailure] = None
    reproducer_path: Optional[str] = None

    def describe(self) -> str:
        if not self.found:
            return f"no failures in {self.cases_run} case(s)"
        where = (
            f"; reproducer: {self.reproducer_path}"
            if self.reproducer_path
            else ""
        )
        detail = self.failure.detail if self.failure else ""
        return (
            f"FAIL after {self.cases_run} case(s), shrunk to "
            f"{self.case.instructions} instruction(s): {detail}{where}"
        )


def fuzz(
    budget: float = 30.0,
    seed: int = 0,
    inject: Optional[str] = None,
    out_path: Optional[str] = None,
    max_instructions: int = 400,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzResult:
    """Fuzz until a failure is found and shrunk, or the budget expires.

    ``budget`` is wall-clock seconds for the whole run, shrinking
    included (the shrinker may overshoot by at most one simulation).
    On failure the shrunk case is written to ``out_path`` (when given)
    as a replayable reproducer.
    """
    if inject is not None and inject not in INJECTIONS:
        raise ReproError(
            f"unknown injection {inject!r}; known: "
            f"{', '.join(sorted(INJECTIONS))}"
        )
    rng = random.Random(seed)
    deadline = time.monotonic() + budget
    queue = canonical_cases(max_instructions)
    cases_run = 0
    while time.monotonic() < deadline:
        case = queue.pop(0) if queue else random_case(rng, max_instructions)
        cases_run += 1
        failure = run_case(case, inject)
        if failure is None:
            continue
        if log is not None:
            log(
                f"case {cases_run} failed ({failure.kind}): "
                f"{failure.detail}; shrinking"
            )
        shrunk = shrink(case, inject, deadline=deadline)
        final = run_case(shrunk, inject)
        assert final is not None  # shrink() preserves failure
        path = None
        if out_path is not None:
            write_reproducer(
                out_path, make_reproducer(shrunk, final, inject=inject)
            )
            path = out_path
        return FuzzResult(
            found=True,
            cases_run=cases_run,
            case=shrunk,
            failure=final,
            reproducer_path=path,
        )
    return FuzzResult(found=False, cases_run=cases_run)
