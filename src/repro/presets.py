"""Named machine presets.

The paper positions its base machine against two references: the Alpha
21264 (the source of the loop examples in §1 and Figure 2) and the
Pentium 4 (the motivating "pipeline length greater than 20 stages with
a ~20-cycle branch resolution" design).  These presets approximate both
within this simulator's stage vocabulary so the loop arithmetic can be
compared directly — ``examples/loop_inventory.py`` and the CLI's
``loopsim loops`` accept them.

These are *loop-geometry* presets: widths and structure sizes follow
each machine loosely; the quantity being modelled is where the loops
sit and how long they are.
"""

from __future__ import annotations

from typing import Dict

from repro.core.config import CoreConfig

__all__ = ["MACHINE_PRESETS", "preset"]


def _alpha21264_like() -> CoreConfig:
    """A 21264-flavoured short pipe: 7-stage, 4-wide-ish loops.

    Branch resolution spans ~6 stages with single-cycle feedback (the
    paper's 7-cycle minimum impact example); the load loop is short.
    """
    return CoreConfig(
        fetch_width=4,
        rename_width=4,
        issue_width=4,
        retire_width=4,
        num_clusters=4,
        fetch_depth=2,
        dec_iq=2,
        iq_ex=2,
        rename_offset=1,
        rf_read_latency=1,
        iq_entries=35,          # 20 int + 15 fp in the real 21264
        rob_entries=80,
        num_pregs=512,
        fb_depth=6,
        iq_feedback_delay=1,
        iq_clear_cycles=1,
    )


def _base_hpca02() -> CoreConfig:
    """The paper's base machine (CoreConfig.base())."""
    return CoreConfig.base()


def _pentium4_like() -> CoreConfig:
    """A long-pipe design: >20 stages, ~20-cycle branch resolution.

    The paper's motivating example of where pipelines were heading.
    """
    return CoreConfig(
        fetch_depth=6,
        dec_iq=8,
        iq_ex=8,
        rename_offset=3,
        rf_read_latency=5,
        iq_feedback_delay=4,
    )


MACHINE_PRESETS: Dict[str, object] = {
    "alpha21264": _alpha21264_like,
    "base": _base_hpca02,
    "pentium4": _pentium4_like,
}


def preset(name: str) -> CoreConfig:
    """Build a named machine preset."""
    try:
        factory = MACHINE_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; known: {sorted(MACHINE_PRESETS)}"
        ) from None
    return factory()
