"""Ablation studies for the design choices the paper discusses in prose.

* **Load-miss recovery policy** (§2.2.2): reissue ≫ refetch, and both
  beat stalling — the paper dismisses re-fetch after finding it
  "performs significantly worse than reissue".
* **CRC geometry and policy** (§5.1): a 16-entry FIFO CRC is "more than
  adequate"; near-oracle replacement buys almost nothing.
* **Forwarding-buffer depth** (§4 / Figure 6): the 9-cycle window covers
  about half of all operand gaps; shrinking it shifts traffic onto the
  CRCs and the operand miss rate.
* **Cluster slotting**: dependence-based slotting versus round-robin.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import format_heading, format_table, percent
from repro.core import CoreConfig, DRAConfig, LoadRecovery, OperandSource
from repro.experiments.runner import ExperimentSettings, run_config

#: Representative workloads: a branchy integer code, the archetypal
#: load-loop code, and the operand-miss-prone low-ILP code.
DEFAULT_WORKLOADS: Tuple[str, ...] = ("compress", "swim", "apsi")


@dataclass
class AblationResult:
    """Generic ablation output: variant -> workload -> metric."""

    title: str
    variants: List[str] = field(default_factory=list)
    #: variant -> workload -> relative IPC (vs the first variant)
    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: variant -> workload -> auxiliary metric (policy dependent)
    aux: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def relative(self, variant: str, workload: str) -> float:
        """IPC of a variant relative to the baseline variant."""
        return self.rows[variant][workload]

    def render(self) -> str:
        """The ablation as a text table."""
        workloads = list(next(iter(self.rows.values())).keys())
        headers = ["variant"] + workloads
        rows = [
            [variant] + [percent(self.rows[variant][w]) for w in workloads]
            for variant in self.variants
        ]
        return format_heading(self.title) + "\n" + format_table(headers, rows)


def run_recovery_ablation(
    settings: Optional[ExperimentSettings] = None,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
) -> AblationResult:
    """Load-miss recovery policies on the base machine (§2.2.2)."""
    settings = settings or ExperimentSettings()
    result = AblationResult(title="Ablation: load resolution loop management")
    policies = [LoadRecovery.REISSUE, LoadRecovery.REFETCH, LoadRecovery.STALL]
    baseline: Dict[str, float] = {}
    for policy in policies:
        variant = policy.value
        result.variants.append(variant)
        result.rows[variant] = {}
        for workload in workloads:
            config = CoreConfig.base().replace(load_recovery=policy)
            point = run_config(workload, config, settings)
            if policy is LoadRecovery.REISSUE:
                baseline[workload] = point.ipc
            result.rows[variant][workload] = point.ipc / baseline[workload]
    return result


def run_crc_ablation(
    settings: Optional[ExperimentSettings] = None,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    entries: Sequence[int] = (4, 8, 16, 32),
    rf_latency: int = 5,
) -> AblationResult:
    """CRC capacity and replacement policy (§5.1)."""
    settings = settings or ExperimentSettings()
    result = AblationResult(title="Ablation: cluster register cache geometry")
    baseline: Dict[str, float] = {}
    variants: List[Tuple[str, DRAConfig]] = [
        (f"fifo-{n}", DRAConfig(crc_entries=n)) for n in entries
    ]
    variants.append(("oracle-16", DRAConfig(crc_entries=16, oracle_crc=True)))
    for name, dra in variants:
        result.variants.append(name)
        result.rows[name] = {}
        result.aux[name] = {}
        for workload in workloads:
            config = CoreConfig.with_dra(rf_latency, dra=dra)
            point = run_config(workload, config, settings)
            if not baseline.get(workload):
                baseline[workload] = point.ipc
            result.rows[name][workload] = point.ipc / baseline[workload]
            result.aux[name][workload] = point.last.stats.operand_miss_rate
    return result


def run_forwarding_ablation(
    settings: Optional[ExperimentSettings] = None,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    depths: Sequence[int] = (3, 6, 9, 15),
    rf_latency: int = 5,
) -> AblationResult:
    """Forwarding-buffer depth under the DRA (§4, Figure 6)."""
    settings = settings or ExperimentSettings()
    result = AblationResult(title="Ablation: forwarding buffer depth")
    baseline: Dict[str, float] = {}
    for depth in depths:
        variant = f"fb-{depth}"
        result.variants.append(variant)
        result.rows[variant] = {}
        result.aux[variant] = {}
        for workload in workloads:
            config = CoreConfig.with_dra(rf_latency).replace(fb_depth=depth)
            point = run_config(workload, config, settings)
            if not baseline.get(workload):
                baseline[workload] = point.ipc
            result.rows[variant][workload] = point.ipc / baseline[workload]
            stats = point.last.stats
            fractions = stats.operand_source_fractions()
            result.aux[variant][workload] = fractions[OperandSource.FORWARD]
    return result


def run_predictor_ablation(
    settings: Optional[ExperimentSettings] = None,
    workloads: Sequence[str] = ("compress", "go", "m88ksim"),
    kinds: Sequence[str] = ("taken", "bimodal", "gshare", "local", "tournament"),
) -> AblationResult:
    """Branch predictor choice — attacking the branch loop's *rate*.

    The §1 cost model says mis-speculation cost = occurrences x rate x
    impact; the predictor is the machine's lever on the rate term.
    """
    from repro.branch.predictors import PredictorSpec

    settings = settings or ExperimentSettings()
    result = AblationResult(title="Ablation: branch direction predictor")
    baseline: Dict[str, float] = {}
    for kind in kinds:
        result.variants.append(kind)
        result.rows[kind] = {}
        result.aux[kind] = {}
        for workload in workloads:
            config = CoreConfig.base().replace(
                predictor=PredictorSpec(kind=kind)
            )
            point = run_config(workload, config, settings)
            if not baseline.get(workload):
                baseline[workload] = point.ipc
            result.rows[kind][workload] = point.ipc / baseline[workload]
            result.aux[kind][workload] = (
                point.last.stats.branch_mispredict_rate
            )
    return result


def run_rf_ports_ablation(
    settings: Optional[ExperimentSettings] = None,
    workloads: Sequence[str] = ("m88ksim", "swim"),
    ports: Sequence[int] = (16, 12, 8, 4),
) -> AblationResult:
    """Register-file read ports on the base machine (§2.1).

    The paper keeps full port capability (16 read ports for 8-wide
    issue) and argues in prose that "the full port capability is not
    needed in most cases" yet reducing ports "adds unnecessary
    complexity".  This ablation measures the bandwidth side: how much
    performance a port-limited issue stage actually loses.
    """
    settings = settings or ExperimentSettings()
    result = AblationResult(title="Ablation: register file read ports")
    baseline: Dict[str, float] = {}
    for count in ports:
        variant = f"ports-{count}"
        result.variants.append(variant)
        result.rows[variant] = {}
        for workload in workloads:
            config = CoreConfig.base().replace(rf_read_ports=count)
            point = run_config(workload, config, settings)
            if not baseline.get(workload):
                baseline[workload] = point.ipc
            result.rows[variant][workload] = point.ipc / baseline[workload]
    return result


def run_wake_lead_ablation(
    settings: Optional[ExperimentSettings] = None,
    workloads: Sequence[str] = ("swim", "compress"),
    leads: Sequence[int] = (0, 3, 6, 12),
) -> AblationResult:
    """How aggressively missed-load dependents may wake (§2.2.2).

    ``load_fill_wake_lead`` is the number of cycles before a missed
    load's fill that dependents may begin to reissue.  0 is the paper's
    conservative semantics (reissue after resolution: the dependent
    reaches execute a full IQ->EX after the data); a lead of IQ->EX
    would hide the issue traversal entirely.  This isolates the
    mechanism behind Figure 5.
    """
    settings = settings or ExperimentSettings()
    result = AblationResult(title="Ablation: load-fill wake lead")
    baseline: Dict[str, float] = {}
    for lead in leads:
        variant = f"lead-{lead}"
        result.variants.append(variant)
        result.rows[variant] = {}
        for workload in workloads:
            config = CoreConfig.base().replace(load_fill_wake_lead=lead)
            point = run_config(workload, config, settings)
            if not baseline.get(workload):
                baseline[workload] = point.ipc
            result.rows[variant][workload] = point.ipc / baseline[workload]
    return result


def run_iq_size_ablation(
    settings: Optional[ExperimentSettings] = None,
    workloads: Sequence[str] = ("swim", "compress"),
    sizes: Sequence[int] = (32, 64, 128, 256),
) -> AblationResult:
    """Issue-queue capacity vs the §2.2.2 retention pressure.

    Issued instructions hold IQ entries for a full loop delay; with a
    small queue that retention visibly throttles the window.
    """
    settings = settings or ExperimentSettings()
    result = AblationResult(title="Ablation: issue queue capacity")
    baseline: Dict[str, float] = {}
    for size in sizes:
        variant = f"iq-{size}"
        result.variants.append(variant)
        result.rows[variant] = {}
        result.aux[variant] = {}
        for workload in workloads:
            config = CoreConfig.base().replace(iq_entries=size)
            point = run_config(workload, config, settings)
            if not baseline.get(workload):
                baseline[workload] = point.ipc
            result.rows[variant][workload] = point.ipc / baseline[workload]
            result.aux[variant][workload] = (
                point.last.stats.avg_iq_issued_waiting
            )
    return result


def run_centralization_ablation(
    settings: Optional[ExperimentSettings] = None,
    workloads: Sequence[str] = ("swim", "compress"),
    rf_latency: int = 5,
) -> AblationResult:
    """One central register cache vs the distributed CRCs (§4).

    The paper argues a single small register cache must fail: "a small
    register cache results in a high miss rate ... a register cache may
    need to be of comparable size to a register file".  The variants:
    the DRA's 8 x 16 distributed CRCs, a single shared 16-entry cache,
    and a single cache grown to 128 entries (register-file-class
    capacity, which hardware could not read in one cycle).
    """
    settings = settings or ExperimentSettings()
    result = AblationResult(title="Ablation: distributed vs central register cache")
    variants: List[Tuple[str, DRAConfig]] = [
        ("distributed-8x16", DRAConfig()),
        ("central-16", DRAConfig(centralized=True)),
        ("central-128", DRAConfig(centralized=True, crc_entries=128)),
    ]
    baseline: Dict[str, float] = {}
    for name, dra in variants:
        result.variants.append(name)
        result.rows[name] = {}
        result.aux[name] = {}
        for workload in workloads:
            config = CoreConfig.with_dra(rf_latency, dra=dra)
            point = run_config(workload, config, settings)
            if not baseline.get(workload):
                baseline[workload] = point.ipc
            result.rows[name][workload] = point.ipc / baseline[workload]
            result.aux[name][workload] = point.last.stats.operand_miss_rate
    return result


def run_memdep_ablation(
    settings: Optional[ExperimentSettings] = None,
    workloads: Sequence[str] = ("compress", "swim"),
) -> AblationResult:
    """Memory dependence loop management policies (paper Figure 2).

    Store-wait prediction (the default) against always-speculate
    (``naive``), never-speculate (``conservative``), and perfect
    disambiguation (``disabled``) on the base machine.
    """
    from repro.core.memdep import MemDepConfig, MemDepPolicy

    settings = settings or ExperimentSettings()
    result = AblationResult(title="Ablation: memory dependence speculation")
    variants = [
        ("predict", MemDepConfig(policy=MemDepPolicy.PREDICT)),
        ("naive", MemDepConfig(policy=MemDepPolicy.NAIVE)),
        ("conservative", MemDepConfig(policy=MemDepPolicy.CONSERVATIVE)),
        ("disabled", None),
    ]
    baseline: Dict[str, float] = {}
    for name, memdep in variants:
        result.variants.append(name)
        result.rows[name] = {}
        result.aux[name] = {}
        for workload in workloads:
            config = CoreConfig.base().replace(memdep=memdep)
            point = run_config(workload, config, settings)
            if not baseline.get(workload):
                baseline[workload] = point.ipc
            result.rows[name][workload] = point.ipc / baseline[workload]
            result.aux[name][workload] = float(
                point.last.stats.memdep_traps
            )
    return result


def run_slotting_ablation(
    settings: Optional[ExperimentSettings] = None,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    rf_latency: int = 5,
) -> AblationResult:
    """Dependence-based versus round-robin cluster slotting."""
    settings = settings or ExperimentSettings()
    result = AblationResult(title="Ablation: cluster slotting policy")
    baseline: Dict[str, float] = {}
    for slotting in ("dependence", "round_robin"):
        result.variants.append(slotting)
        result.rows[slotting] = {}
        result.aux[slotting] = {}
        for workload in workloads:
            config = CoreConfig.with_dra(rf_latency).replace(slotting=slotting)
            point = run_config(workload, config, settings)
            if not baseline.get(workload):
                baseline[workload] = point.ipc
            result.rows[slotting][workload] = point.ipc / baseline[workload]
            result.aux[slotting][workload] = point.last.stats.operand_miss_rate
    return result
