"""Ablation studies for the design choices the paper discusses in prose.

* **Load-miss recovery policy** (§2.2.2): reissue ≫ refetch, and both
  beat stalling — the paper dismisses re-fetch after finding it
  "performs significantly worse than reissue".
* **CRC geometry and policy** (§5.1): a 16-entry FIFO CRC is "more than
  adequate"; near-oracle replacement buys almost nothing.
* **Forwarding-buffer depth** (§4 / Figure 6): the 9-cycle window covers
  about half of all operand gaps; shrinking it shifts traffic onto the
  CRCs and the operand miss rate.
* **Cluster slotting**: dependence-based slotting versus round-robin.

Every study runs as one harness campaign (see
:func:`repro.experiments.runner.run_campaign`): failed cells surface as
``n/a`` entries plus a failure report instead of aborting the study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis import format_heading, format_table, percent
from repro.core import CoreConfig, DRAConfig, LoadRecovery, OperandSource
from repro.experiments.runner import (
    CellFailure,
    ExperimentSettings,
    HarnessSettings,
    RunPoint,
    render_failure_report,
    run_campaign,
)

#: Representative workloads: a branchy integer code, the archetypal
#: load-loop code, and the operand-miss-prone low-ILP code.
DEFAULT_WORKLOADS: Tuple[str, ...] = ("compress", "swim", "apsi")


@dataclass
class AblationResult:
    """Generic ablation output: variant -> workload -> metric."""

    title: str
    variants: List[str] = field(default_factory=list)
    #: variant -> workload -> relative IPC (vs the first variant);
    #: None marks a cell lost to a simulation failure
    rows: Dict[str, Dict[str, Optional[float]]] = field(default_factory=dict)
    #: variant -> workload -> auxiliary metric (policy dependent)
    aux: Dict[str, Dict[str, Optional[float]]] = field(default_factory=dict)
    #: cells that failed after retries (graceful degradation)
    failures: List[CellFailure] = field(default_factory=list)

    def relative(self, variant: str, workload: str) -> float:
        """IPC of a variant relative to the baseline variant."""
        return self.rows[variant][workload]

    def render(self) -> str:
        """The ablation as a text table."""
        workloads = list(next(iter(self.rows.values())).keys())
        headers = ["variant"] + workloads
        rows = [
            [variant] + [percent(self.rows[variant][w]) for w in workloads]
            for variant in self.variants
        ]
        text = format_heading(self.title) + "\n" + format_table(headers, rows)
        report = render_failure_report(self.failures)
        return text + ("\n\n" + report if report else "")


def _run_ablation(
    title: str,
    variants: Sequence[Tuple[str, CoreConfig]],
    workloads: Sequence[str],
    settings: Optional[ExperimentSettings],
    harness: Optional[HarnessSettings] = None,
    aux: Optional[Callable[[RunPoint], float]] = None,
) -> AblationResult:
    """Run a variant-vs-baseline study as one fault-tolerant campaign.

    The first variant is the baseline every other variant's IPC is
    normalised against; a workload whose baseline cell failed reports
    None for all of its variants.
    """
    settings = settings or ExperimentSettings()
    result = AblationResult(title=title)
    campaign = run_campaign(
        [(w, config) for _, config in variants for w in workloads],
        settings,
        harness,
    )
    result.failures = campaign.failures
    baseline_config = variants[0][1]
    for name, config in variants:
        result.variants.append(name)
        result.rows[name] = {}
        if aux is not None:
            result.aux[name] = {}
        for workload in workloads:
            point = campaign.point(workload, config)
            base = campaign.point(workload, baseline_config)
            if point is None or base is None or base.ipc == 0:
                result.rows[name][workload] = None
            else:
                result.rows[name][workload] = point.ipc / base.ipc
            if aux is not None:
                result.aux[name][workload] = (
                    aux(point) if point is not None else None
                )
    return result


def run_recovery_ablation(
    settings: Optional[ExperimentSettings] = None,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    harness: Optional[HarnessSettings] = None,
) -> AblationResult:
    """Load-miss recovery policies on the base machine (§2.2.2)."""
    variants = [
        (policy.value, CoreConfig.base().replace(load_recovery=policy))
        for policy in (
            LoadRecovery.REISSUE, LoadRecovery.REFETCH, LoadRecovery.STALL
        )
    ]
    return _run_ablation(
        "Ablation: load resolution loop management",
        variants, workloads, settings, harness,
    )


def run_crc_ablation(
    settings: Optional[ExperimentSettings] = None,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    entries: Sequence[int] = (4, 8, 16, 32),
    rf_latency: int = 5,
    harness: Optional[HarnessSettings] = None,
) -> AblationResult:
    """CRC capacity and replacement policy (§5.1)."""
    dras = [(f"fifo-{n}", DRAConfig(crc_entries=n)) for n in entries]
    dras.append(("oracle-16", DRAConfig(crc_entries=16, oracle_crc=True)))
    variants = [
        (name, CoreConfig.with_dra(rf_latency, dra=dra)) for name, dra in dras
    ]
    return _run_ablation(
        "Ablation: cluster register cache geometry",
        variants, workloads, settings, harness,
        aux=lambda point: point.last.stats.operand_miss_rate,
    )


def run_forwarding_ablation(
    settings: Optional[ExperimentSettings] = None,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    depths: Sequence[int] = (3, 6, 9, 15),
    rf_latency: int = 5,
    harness: Optional[HarnessSettings] = None,
) -> AblationResult:
    """Forwarding-buffer depth under the DRA (§4, Figure 6)."""
    variants = [
        (f"fb-{depth}", CoreConfig.with_dra(rf_latency).replace(fb_depth=depth))
        for depth in depths
    ]
    return _run_ablation(
        "Ablation: forwarding buffer depth",
        variants, workloads, settings, harness,
        aux=lambda point: point.last.stats.operand_source_fractions()[
            OperandSource.FORWARD
        ],
    )


def run_predictor_ablation(
    settings: Optional[ExperimentSettings] = None,
    workloads: Sequence[str] = ("compress", "go", "m88ksim"),
    kinds: Sequence[str] = ("taken", "bimodal", "gshare", "local", "tournament"),
    harness: Optional[HarnessSettings] = None,
) -> AblationResult:
    """Branch predictor choice — attacking the branch loop's *rate*.

    The §1 cost model says mis-speculation cost = occurrences x rate x
    impact; the predictor is the machine's lever on the rate term.
    """
    from repro.branch.predictors import PredictorSpec

    variants = [
        (kind, CoreConfig.base().replace(predictor=PredictorSpec(kind=kind)))
        for kind in kinds
    ]
    return _run_ablation(
        "Ablation: branch direction predictor",
        variants, workloads, settings, harness,
        aux=lambda point: point.last.stats.branch_mispredict_rate,
    )


def run_rf_ports_ablation(
    settings: Optional[ExperimentSettings] = None,
    workloads: Sequence[str] = ("m88ksim", "swim"),
    ports: Sequence[int] = (16, 12, 8, 4),
    harness: Optional[HarnessSettings] = None,
) -> AblationResult:
    """Register-file read ports on the base machine (§2.1).

    The paper keeps full port capability (16 read ports for 8-wide
    issue) and argues in prose that "the full port capability is not
    needed in most cases" yet reducing ports "adds unnecessary
    complexity".  This ablation measures the bandwidth side: how much
    performance a port-limited issue stage actually loses.
    """
    variants = [
        (f"ports-{count}", CoreConfig.base().replace(rf_read_ports=count))
        for count in ports
    ]
    return _run_ablation(
        "Ablation: register file read ports",
        variants, workloads, settings, harness,
    )


def run_wake_lead_ablation(
    settings: Optional[ExperimentSettings] = None,
    workloads: Sequence[str] = ("swim", "compress"),
    leads: Sequence[int] = (0, 3, 6, 12),
    harness: Optional[HarnessSettings] = None,
) -> AblationResult:
    """How aggressively missed-load dependents may wake (§2.2.2).

    ``load_fill_wake_lead`` is the number of cycles before a missed
    load's fill that dependents may begin to reissue.  0 is the paper's
    conservative semantics (reissue after resolution: the dependent
    reaches execute a full IQ->EX after the data); a lead of IQ->EX
    would hide the issue traversal entirely.  This isolates the
    mechanism behind Figure 5.
    """
    variants = [
        (f"lead-{lead}", CoreConfig.base().replace(load_fill_wake_lead=lead))
        for lead in leads
    ]
    return _run_ablation(
        "Ablation: load-fill wake lead",
        variants, workloads, settings, harness,
    )


def run_iq_size_ablation(
    settings: Optional[ExperimentSettings] = None,
    workloads: Sequence[str] = ("swim", "compress"),
    sizes: Sequence[int] = (32, 64, 128, 256),
    harness: Optional[HarnessSettings] = None,
) -> AblationResult:
    """Issue-queue capacity vs the §2.2.2 retention pressure.

    Issued instructions hold IQ entries for a full loop delay; with a
    small queue that retention visibly throttles the window.
    """
    variants = [
        (f"iq-{size}", CoreConfig.base().replace(iq_entries=size))
        for size in sizes
    ]
    return _run_ablation(
        "Ablation: issue queue capacity",
        variants, workloads, settings, harness,
        aux=lambda point: point.last.stats.avg_iq_issued_waiting,
    )


def run_centralization_ablation(
    settings: Optional[ExperimentSettings] = None,
    workloads: Sequence[str] = ("swim", "compress"),
    rf_latency: int = 5,
    harness: Optional[HarnessSettings] = None,
) -> AblationResult:
    """One central register cache vs the distributed CRCs (§4).

    The paper argues a single small register cache must fail: "a small
    register cache results in a high miss rate ... a register cache may
    need to be of comparable size to a register file".  The variants:
    the DRA's 8 x 16 distributed CRCs, a single shared 16-entry cache,
    and a single cache grown to 128 entries (register-file-class
    capacity, which hardware could not read in one cycle).
    """
    dras = [
        ("distributed-8x16", DRAConfig()),
        ("central-16", DRAConfig(centralized=True)),
        ("central-128", DRAConfig(centralized=True, crc_entries=128)),
    ]
    variants = [
        (name, CoreConfig.with_dra(rf_latency, dra=dra)) for name, dra in dras
    ]
    return _run_ablation(
        "Ablation: distributed vs central register cache",
        variants, workloads, settings, harness,
        aux=lambda point: point.last.stats.operand_miss_rate,
    )


def run_memdep_ablation(
    settings: Optional[ExperimentSettings] = None,
    workloads: Sequence[str] = ("compress", "swim"),
    harness: Optional[HarnessSettings] = None,
) -> AblationResult:
    """Memory dependence loop management policies (paper Figure 2).

    Store-wait prediction (the default) against always-speculate
    (``naive``), never-speculate (``conservative``), and perfect
    disambiguation (``disabled``) on the base machine.
    """
    from repro.core.memdep import MemDepConfig, MemDepPolicy

    variants = [
        (name, CoreConfig.base().replace(memdep=memdep))
        for name, memdep in (
            ("predict", MemDepConfig(policy=MemDepPolicy.PREDICT)),
            ("naive", MemDepConfig(policy=MemDepPolicy.NAIVE)),
            ("conservative", MemDepConfig(policy=MemDepPolicy.CONSERVATIVE)),
            ("disabled", None),
        )
    ]
    return _run_ablation(
        "Ablation: memory dependence speculation",
        variants, workloads, settings, harness,
        aux=lambda point: float(point.last.stats.memdep_traps),
    )


def run_slotting_ablation(
    settings: Optional[ExperimentSettings] = None,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    rf_latency: int = 5,
    harness: Optional[HarnessSettings] = None,
) -> AblationResult:
    """Dependence-based versus round-robin cluster slotting."""
    variants = [
        (slotting, CoreConfig.with_dra(rf_latency).replace(slotting=slotting))
        for slotting in ("dependence", "round_robin")
    ]
    return _run_ablation(
        "Ablation: cluster slotting policy",
        variants, workloads, settings, harness,
        aux=lambda point: point.last.stats.operand_miss_rate,
    )
