"""Experiment drivers.

One module per artefact of the paper's evaluation:

* :mod:`repro.experiments.fig4` — speedup vs decode-to-execute length.
* :mod:`repro.experiments.fig5` — fixed-total-latency pipeline balance.
* :mod:`repro.experiments.fig6` — operand-availability-gap CDF.
* :mod:`repro.experiments.fig8` — DRA vs base speedups.
* :mod:`repro.experiments.fig9` — operand-source breakdown.
* :mod:`repro.experiments.ablations` — recovery policy / CRC / FB studies.
* :mod:`repro.experiments.loop_inventory` — the §1 loop framework tables.

All drivers accept an :class:`ExperimentSettings` so tests, benchmarks
and the CLI can trade fidelity for runtime.
"""

from repro.experiments.runner import (
    Campaign,
    ExperimentSettings,
    RunPoint,
    render_failure_report,
    run_campaign,
    run_config,
)
from repro.experiments.fig4 import Figure4Result, run_figure4
from repro.experiments.fig5 import Figure5Result, run_figure5
from repro.experiments.fig6 import Figure6Result, run_figure6
from repro.experiments.fig8 import Figure8Result, run_figure8
from repro.experiments.fig9 import Figure9Result, run_figure9
from repro.experiments.ablations import (
    run_centralization_ablation,
    run_crc_ablation,
    run_forwarding_ablation,
    run_iq_size_ablation,
    run_memdep_ablation,
    run_predictor_ablation,
    run_recovery_ablation,
    run_rf_ports_ablation,
    run_slotting_ablation,
    run_wake_lead_ablation,
)
from repro.experiments.loop_inventory import render_loop_inventory

__all__ = [
    "Campaign",
    "ExperimentSettings",
    "RunPoint",
    "render_failure_report",
    "run_campaign",
    "run_config",
    "run_figure4",
    "Figure4Result",
    "run_figure5",
    "Figure5Result",
    "run_figure6",
    "Figure6Result",
    "run_figure8",
    "Figure8Result",
    "run_figure9",
    "Figure9Result",
    "run_recovery_ablation",
    "run_crc_ablation",
    "run_forwarding_ablation",
    "run_slotting_ablation",
    "run_centralization_ablation",
    "run_memdep_ablation",
    "run_wake_lead_ablation",
    "run_iq_size_ablation",
    "run_rf_ports_ablation",
    "run_predictor_ablation",
    "render_loop_inventory",
]
