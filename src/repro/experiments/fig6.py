"""Figure 6 — cycles between first and second operand availability.

For every executed instruction the simulator records the absolute gap
between its two source operands' availability times (zero for
instructions with fewer than two sources).  The paper plots the CDF for
turb3d and reads off two facts that motivate the DRA's structure sizing:
roughly half of all instructions are covered by the 9-cycle forwarding
buffer, and ~25 % of instructions see gaps of 25+ cycles, so a register
cache sized like a register file would be needed to cover everything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis import EmpiricalCDF, format_heading, render_series
from repro.core import CoreConfig
from repro.experiments.runner import (
    ExperimentSettings,
    HarnessSettings,
    run_config,
)

DEFAULT_WORKLOAD = "turb3d"

#: X-axis sample points for the rendered CDF.
CDF_POINTS: Sequence[float] = (0, 1, 2, 3, 5, 7, 9, 12, 15, 20, 25, 35, 50, 75, 100)


@dataclass
class Figure6Result:
    """The operand-availability-gap CDF for one workload."""

    workload: str
    cdf: EmpiricalCDF
    fb_depth: int

    @property
    def covered_by_forwarding(self) -> float:
        """Fraction of instructions whose gap fits the forwarding buffer."""
        return self.cdf.at(self.fb_depth)

    @property
    def beyond_25_cycles(self) -> float:
        """Fraction of instructions with 25+ cycle gaps (the long tail)."""
        return self.cdf.tail_fraction(25)

    def render(self) -> str:
        """The figure as a text series."""
        lines = [
            format_heading(
                f"Figure 6: CDF of cycles between operand availability "
                f"({self.workload})"
            ),
            render_series(self.cdf.series(CDF_POINTS), label="  cycles  P(gap<=x)"),
            "",
            f"covered by {self.fb_depth}-cycle forwarding buffer: "
            f"{self.covered_by_forwarding:.1%}",
            f"gap > 25 cycles: {self.beyond_25_cycles:.1%}",
        ]
        return "\n".join(lines)


def run_figure6(
    settings: Optional[ExperimentSettings] = None,
    workload: str = DEFAULT_WORKLOAD,
    harness: Optional[HarnessSettings] = None,
) -> Figure6Result:
    """Regenerate Figure 6 on the base machine.

    A single-cell figure: there is nothing to degrade to, so a cell
    failure propagates as its classified :class:`~repro.errors.ReproError`.
    """
    settings = settings or ExperimentSettings()
    config = CoreConfig.base()
    point = run_config(workload, config, settings, harness=harness)
    samples = []
    for result in point.results:
        samples.extend(result.stats.operand_gap_samples)
    return Figure6Result(
        workload=workload,
        cdf=EmpiricalCDF(samples),
        fb_depth=config.fb_depth,
    )
