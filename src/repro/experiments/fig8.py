"""Figure 8 — DRA speedups over the base architecture.

For register-file read latencies of 3, 5 and 7 cycles the DRA pipeline
(register read moved into DEC->IQ, IQ->EX shrunk to 3) is compared to
the matching base pipeline:

* rf=3: DRA 5_3 vs Base 5_5
* rf=5: DRA 7_3 vs Base 5_7
* rf=7: DRA 9_3 vs Base 5_9

The paper reports gains of up to 4 % / 9 % / 15 % respectively, with
``apsi`` (and ``apsi+swim``) losing because its ~1.5 % operand miss
rate on the new operand resolution loop outweighs the shorter pipe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import format_heading, format_table, percent
from repro.core import CoreConfig
from repro.experiments.runner import (
    CellFailure,
    ExperimentSettings,
    HarnessSettings,
    render_failure_report,
    run_campaign,
)
from repro.workloads import ALL_WORKLOADS

#: The paper's three register-file read latencies.
RF_LATENCIES: Tuple[int, ...] = (3, 5, 7)


@dataclass
class Figure8Result:
    """DRA-vs-base speedups per workload per register-file latency."""

    #: workload -> [speedup at rf=3, rf=5, rf=7] (1.0 = no change);
    #: None marks a comparison lost to a failed cell
    rows: Dict[str, List[Optional[float]]] = field(default_factory=dict)
    #: workload -> [DRA operand miss rate at each rf latency]
    miss_rates: Dict[str, List[Optional[float]]] = field(default_factory=dict)
    rf_latencies: Tuple[int, ...] = RF_LATENCIES
    #: cells that failed after retries (graceful degradation)
    failures: List[CellFailure] = field(default_factory=list)

    def speedup(self, workload: str, rf_latency: int) -> float:
        """Speedup of the DRA for one workload and rf latency."""
        return self.rows[workload][self.rf_latencies.index(rf_latency)]

    def best_gain(self, rf_latency: int) -> float:
        """The 'up to' number: max fractional gain at one rf latency."""
        index = self.rf_latencies.index(rf_latency)
        return max(
            values[index]
            for values in self.rows.values()
            if values[index] is not None
        ) - 1.0

    def render(self) -> str:
        """The figure as a text table."""
        headers = ["workload"] + [
            f"DRA:{max(5, 2 + rf)}_3 vs Base:5_{2 + rf}"
            for rf in self.rf_latencies
        ]
        rows = [
            [name] + [percent(v) for v in values]
            for name, values in self.rows.items()
        ]
        text = (
            format_heading("Figure 8: DRA speedup over the base architecture")
            + "\n"
            + format_table(headers, rows)
        )
        report = render_failure_report(self.failures)
        return text + ("\n\n" + report if report else "")


def run_figure8(
    settings: Optional[ExperimentSettings] = None,
    workloads: Sequence[str] = ALL_WORKLOADS,
    rf_latencies: Tuple[int, ...] = RF_LATENCIES,
    harness: Optional[HarnessSettings] = None,
) -> Figure8Result:
    """Regenerate Figure 8."""
    settings = settings or ExperimentSettings()
    result = Figure8Result(rf_latencies=rf_latencies)
    base_configs = {rf: CoreConfig.base(rf) for rf in rf_latencies}
    dra_configs = {rf: CoreConfig.with_dra(rf) for rf in rf_latencies}
    pairs = [
        (workload, config)
        for workload in workloads
        for rf in rf_latencies
        for config in (base_configs[rf], dra_configs[rf])
    ]
    campaign = run_campaign(pairs, settings, harness)
    result.failures = campaign.failures
    for workload in workloads:
        speedups: List[Optional[float]] = []
        misses: List[Optional[float]] = []
        for rf in rf_latencies:
            base = campaign.point(workload, base_configs[rf])
            dra = campaign.point(workload, dra_configs[rf])
            if base is None or dra is None or base.ipc == 0:
                speedups.append(None)
            else:
                speedups.append(dra.ipc / base.ipc)
            misses.append(
                dra.last.stats.operand_miss_rate if dra is not None else None
            )
        result.rows[workload] = speedups
        result.miss_rates[workload] = misses
    return result
