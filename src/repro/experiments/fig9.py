"""Figure 9 — where operands come from under the DRA.

For the 7_3 DRA configuration (5-cycle register file) every operand read
is classified: pre-read from the register file during DEC->IQ, hit in
the forwarding buffer, hit in a cluster register cache, or an operand
miss.  The paper's observations: more than half of all operands come
from the forwarding buffer; the rest split between pre-read and the
CRCs; miss rates are well under 1 % except apsi's ~1.5 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis import format_heading, format_table, percent
from repro.core import CoreConfig, OperandSource
from repro.experiments.runner import (
    CellFailure,
    ExperimentSettings,
    HarnessSettings,
    render_failure_report,
    run_campaign,
)
from repro.workloads import ALL_WORKLOADS

#: Register-file latency of the paper's Figure 9 machine (7_3 DRA).
DEFAULT_RF_LATENCY = 5


@dataclass
class Figure9Result:
    """Operand source fractions per workload."""

    #: workload -> {source: fraction}; fractions sum to 1.  A workload
    #: whose cell failed maps every source to None.
    rows: Dict[str, Dict[OperandSource, Optional[float]]] = field(
        default_factory=dict
    )
    rf_latency: int = DEFAULT_RF_LATENCY
    #: cells that failed after retries (graceful degradation)
    failures: List[CellFailure] = field(default_factory=list)

    def fraction(self, workload: str, source: OperandSource) -> float:
        """One cell of the figure."""
        return self.rows[workload][source]

    def render(self) -> str:
        """The figure as a text table."""
        headers = ["workload", "pre-read", "fwd buffer", "CRC", "miss"]
        rows = []
        for name, fractions in self.rows.items():
            rows.append(
                [
                    name,
                    percent(fractions[OperandSource.PREREAD]),
                    percent(fractions[OperandSource.FORWARD]),
                    percent(fractions[OperandSource.CRC]),
                    percent(fractions[OperandSource.MISS], digits=2),
                ]
            )
        title = (
            f"Figure 9: operand sources for the "
            f"{max(5, 2 + self.rf_latency)}_3 DRA configuration"
        )
        text = format_heading(title) + "\n" + format_table(headers, rows)
        report = render_failure_report(self.failures)
        return text + ("\n\n" + report if report else "")


def run_figure9(
    settings: Optional[ExperimentSettings] = None,
    workloads: Sequence[str] = ALL_WORKLOADS,
    rf_latency: int = DEFAULT_RF_LATENCY,
    harness: Optional[HarnessSettings] = None,
) -> Figure9Result:
    """Regenerate Figure 9."""
    settings = settings or ExperimentSettings()
    result = Figure9Result(rf_latency=rf_latency)
    config = CoreConfig.with_dra(rf_latency)
    campaign = run_campaign(
        [(workload, config) for workload in workloads], settings, harness
    )
    result.failures = campaign.failures
    for workload in workloads:
        point = campaign.point(workload, config)
        if point is None:
            result.rows[workload] = {s: None for s in OperandSource}
            continue
        totals: Dict[OperandSource, float] = {s: 0.0 for s in OperandSource}
        reads = 0
        for sim_result in point.results:
            stats = sim_result.stats
            reads += stats.total_operand_reads
            for source, count in stats.operand_reads.items():
                totals[source] += count
        if reads:
            totals = {s: c / reads for s, c in totals.items()}
        result.rows[workload] = totals
    return result
