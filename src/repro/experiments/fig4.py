"""Figure 4 — performance vs pipeline length.

The decode-to-execute portion of the pipeline is varied from 6 to 18
cycles in increments of 4 (2 each for DEC->IQ and IQ->EX, exactly as the
paper describes), and each workload's IPC is reported relative to its
6-cycle configuration.  Numbers below 100 % are performance loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import format_heading, format_table, percent
from repro.core import CoreConfig
from repro.experiments.runner import (
    CellFailure,
    ExperimentSettings,
    HarnessSettings,
    render_failure_report,
    run_campaign,
)
from repro.workloads import ALL_WORKLOADS

#: The paper's four (DEC->IQ, IQ->EX) points: 6, 10, 14, 18 total cycles.
PIPE_POINTS: Tuple[Tuple[int, int], ...] = ((3, 3), (5, 5), (7, 7), (9, 9))


@dataclass
class Figure4Result:
    """Relative performance per workload per pipeline length."""

    #: workload -> speedups relative to the shortest pipe (first = 1.0);
    #: None marks a cell lost to a simulation failure
    rows: Dict[str, List[Optional[float]]] = field(default_factory=dict)
    #: absolute IPC of the 6-cycle configuration per workload
    base_ipc: Dict[str, float] = field(default_factory=dict)
    points: Tuple[Tuple[int, int], ...] = PIPE_POINTS
    #: cells that failed after retries (graceful degradation)
    failures: List[CellFailure] = field(default_factory=list)

    def loss_at_longest(self, workload: str) -> float:
        """Fractional loss at the 18-cycle point (positive = slower)."""
        return 1.0 - self.rows[workload][-1]

    def render(self) -> str:
        """The figure as a text table."""
        headers = ["workload"] + [
            f"{d + q}cyc ({d}_{q})" for d, q in self.points
        ]
        rows = [
            [name] + [percent(v) for v in values]
            for name, values in self.rows.items()
        ]
        text = (
            format_heading(
                "Figure 4: speedup vs decode-to-execute length "
                "(relative to 6 cycles)"
            )
            + "\n"
            + format_table(headers, rows)
        )
        report = render_failure_report(self.failures)
        return text + ("\n\n" + report if report else "")


def run_figure4(
    settings: Optional[ExperimentSettings] = None,
    workloads: Sequence[str] = ALL_WORKLOADS,
    harness: Optional[HarnessSettings] = None,
) -> Figure4Result:
    """Regenerate Figure 4."""
    settings = settings or ExperimentSettings()
    result = Figure4Result()
    configs = {
        point: CoreConfig.base().with_pipe(*point) for point in PIPE_POINTS
    }
    campaign = run_campaign(
        [(w, c) for w in workloads for c in configs.values()],
        settings,
        harness,
    )
    result.failures = campaign.failures
    for workload in workloads:
        ipcs = [
            point.ipc if point is not None else None
            for point in (
                campaign.point(workload, configs[p]) for p in PIPE_POINTS
            )
        ]
        base_ipc = ipcs[0]
        result.rows[workload] = [
            ipc / base_ipc if ipc is not None and base_ipc else None
            for ipc in ipcs
        ]
        result.base_ipc[workload] = base_ipc or 0.0
    return result
