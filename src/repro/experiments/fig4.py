"""Figure 4 — performance vs pipeline length.

The decode-to-execute portion of the pipeline is varied from 6 to 18
cycles in increments of 4 (2 each for DEC->IQ and IQ->EX, exactly as the
paper describes), and each workload's IPC is reported relative to its
6-cycle configuration.  Numbers below 100 % are performance loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import format_heading, format_table, percent
from repro.core import CoreConfig
from repro.experiments.runner import ExperimentSettings, run_config
from repro.workloads import ALL_WORKLOADS

#: The paper's four (DEC->IQ, IQ->EX) points: 6, 10, 14, 18 total cycles.
PIPE_POINTS: Tuple[Tuple[int, int], ...] = ((3, 3), (5, 5), (7, 7), (9, 9))


@dataclass
class Figure4Result:
    """Relative performance per workload per pipeline length."""

    #: workload -> speedups relative to the shortest pipe (first = 1.0)
    rows: Dict[str, List[float]] = field(default_factory=dict)
    #: absolute IPC of the 6-cycle configuration per workload
    base_ipc: Dict[str, float] = field(default_factory=dict)
    points: Tuple[Tuple[int, int], ...] = PIPE_POINTS

    def loss_at_longest(self, workload: str) -> float:
        """Fractional loss at the 18-cycle point (positive = slower)."""
        return 1.0 - self.rows[workload][-1]

    def render(self) -> str:
        """The figure as a text table."""
        headers = ["workload"] + [
            f"{d + q}cyc ({d}_{q})" for d, q in self.points
        ]
        rows = [
            [name] + [percent(v) for v in values]
            for name, values in self.rows.items()
        ]
        return (
            format_heading(
                "Figure 4: speedup vs decode-to-execute length "
                "(relative to 6 cycles)"
            )
            + "\n"
            + format_table(headers, rows)
        )


def run_figure4(
    settings: Optional[ExperimentSettings] = None,
    workloads: Sequence[str] = ALL_WORKLOADS,
) -> Figure4Result:
    """Regenerate Figure 4."""
    settings = settings or ExperimentSettings()
    result = Figure4Result()
    for workload in workloads:
        speedups: List[float] = []
        base_ipc: Optional[float] = None
        for dec_iq, iq_ex in PIPE_POINTS:
            config = CoreConfig.base().with_pipe(dec_iq, iq_ex)
            point = run_config(workload, config, settings)
            if base_ipc is None:
                base_ipc = point.ipc
            speedups.append(point.ipc / base_ipc)
        result.rows[workload] = speedups
        result.base_ipc[workload] = base_ipc or 0.0
    return result
