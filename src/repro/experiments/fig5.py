"""Figure 5 — not all pipelines are created equal.

The overall DEC->EX length is held at 12 cycles while the split between
DEC->IQ (X) and IQ->EX (Y) varies: 3_9, 5_7, 7_5, 9_3.  Performance is
relative to 3_9.  The paper's claim: moving cycles out of the IQ->EX
segment — the segment the load resolution loop traverses — improves
performance even though the pipeline is no shorter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import format_heading, format_table, percent
from repro.core import CoreConfig
from repro.experiments.runner import (
    CellFailure,
    ExperimentSettings,
    HarnessSettings,
    render_failure_report,
    run_campaign,
)
from repro.workloads import ALL_WORKLOADS

#: The paper's fixed-total configurations (X_Y with X + Y = 12).
BALANCE_POINTS: Tuple[Tuple[int, int], ...] = ((3, 9), (5, 7), (7, 5), (9, 3))


@dataclass
class Figure5Result:
    """Relative performance per workload per pipeline balance."""

    #: workload -> speedups relative to 3_9; None marks a failed cell
    rows: Dict[str, List[Optional[float]]] = field(default_factory=dict)
    base_ipc: Dict[str, float] = field(default_factory=dict)
    points: Tuple[Tuple[int, int], ...] = BALANCE_POINTS
    #: cells that failed after retries (graceful degradation)
    failures: List[CellFailure] = field(default_factory=list)

    def gain_at_best(self, workload: str) -> float:
        """Fractional gain of 9_3 over 3_9."""
        return self.rows[workload][-1] - 1.0

    def render(self) -> str:
        """The figure as a text table."""
        headers = ["workload"] + [f"{d}_{q}" for d, q in self.points]
        rows = [
            [name] + [percent(v) for v in values]
            for name, values in self.rows.items()
        ]
        text = (
            format_heading(
                "Figure 5: fixed 12-cycle DEC->EX, varying the X_Y split "
                "(relative to 3_9)"
            )
            + "\n"
            + format_table(headers, rows)
        )
        report = render_failure_report(self.failures)
        return text + ("\n\n" + report if report else "")


def run_figure5(
    settings: Optional[ExperimentSettings] = None,
    workloads: Sequence[str] = ALL_WORKLOADS,
    harness: Optional[HarnessSettings] = None,
) -> Figure5Result:
    """Regenerate Figure 5."""
    settings = settings or ExperimentSettings()
    result = Figure5Result()
    configs = {
        point: CoreConfig.base().with_pipe(*point) for point in BALANCE_POINTS
    }
    campaign = run_campaign(
        [(w, c) for w in workloads for c in configs.values()],
        settings,
        harness,
    )
    result.failures = campaign.failures
    for workload in workloads:
        ipcs = [
            point.ipc if point is not None else None
            for point in (
                campaign.point(workload, configs[p]) for p in BALANCE_POINTS
            )
        ]
        base_ipc = ipcs[0]
        result.rows[workload] = [
            ipc / base_ipc if ipc is not None and base_ipc else None
            for ipc in ipcs
        ]
        result.base_ipc[workload] = base_ipc or 0.0
    return result
