"""Figure 5 — not all pipelines are created equal.

The overall DEC->EX length is held at 12 cycles while the split between
DEC->IQ (X) and IQ->EX (Y) varies: 3_9, 5_7, 7_5, 9_3.  Performance is
relative to 3_9.  The paper's claim: moving cycles out of the IQ->EX
segment — the segment the load resolution loop traverses — improves
performance even though the pipeline is no shorter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import format_heading, format_table, percent
from repro.core import CoreConfig
from repro.experiments.runner import ExperimentSettings, run_config
from repro.workloads import ALL_WORKLOADS

#: The paper's fixed-total configurations (X_Y with X + Y = 12).
BALANCE_POINTS: Tuple[Tuple[int, int], ...] = ((3, 9), (5, 7), (7, 5), (9, 3))


@dataclass
class Figure5Result:
    """Relative performance per workload per pipeline balance."""

    rows: Dict[str, List[float]] = field(default_factory=dict)
    base_ipc: Dict[str, float] = field(default_factory=dict)
    points: Tuple[Tuple[int, int], ...] = BALANCE_POINTS

    def gain_at_best(self, workload: str) -> float:
        """Fractional gain of 9_3 over 3_9."""
        return self.rows[workload][-1] - 1.0

    def render(self) -> str:
        """The figure as a text table."""
        headers = ["workload"] + [f"{d}_{q}" for d, q in self.points]
        rows = [
            [name] + [percent(v) for v in values]
            for name, values in self.rows.items()
        ]
        return (
            format_heading(
                "Figure 5: fixed 12-cycle DEC->EX, varying the X_Y split "
                "(relative to 3_9)"
            )
            + "\n"
            + format_table(headers, rows)
        )


def run_figure5(
    settings: Optional[ExperimentSettings] = None,
    workloads: Sequence[str] = ALL_WORKLOADS,
) -> Figure5Result:
    """Regenerate Figure 5."""
    settings = settings or ExperimentSettings()
    result = Figure5Result()
    for workload in workloads:
        speedups: List[float] = []
        base_ipc: Optional[float] = None
        for dec_iq, iq_ex in BALANCE_POINTS:
            config = CoreConfig.base().with_pipe(dec_iq, iq_ex)
            point = run_config(workload, config, settings)
            if base_ipc is None:
                base_ipc = point.ipc
            speedups.append(point.ipc / base_ipc)
        result.rows[workload] = speedups
        result.base_ipc[workload] = base_ipc or 0.0
    return result
