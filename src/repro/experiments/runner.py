"""Shared experiment machinery: settings, seed-averaged runs, caching."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.metrics import mean
from repro.core import CoreConfig, SimResult, simulate


@dataclass(frozen=True)
class ExperimentSettings:
    """Fidelity/runtime trade-off for experiment drivers.

    The defaults are sized for interactive use; the paper's figures are
    regenerated with the same settings by the benchmark suite.
    """

    instructions: int = 10_000
    warmup: int = 100_000
    detailed_warmup: int = 1_500
    seeds: Tuple[int, ...] = (0,)

    @classmethod
    def quick(cls) -> "ExperimentSettings":
        """Small runs for tests (~seconds per configuration)."""
        return cls(instructions=3_000, warmup=30_000, detailed_warmup=500)

    @classmethod
    def full(cls) -> "ExperimentSettings":
        """Seed-averaged runs for the recorded EXPERIMENTS.md numbers."""
        return cls(instructions=12_000, seeds=(0, 1))


@dataclass
class RunPoint:
    """Seed-averaged result of one (workload, config) cell."""

    workload: str
    config: CoreConfig
    ipc: float
    results: List[SimResult] = field(default_factory=list)

    @property
    def last(self) -> SimResult:
        """The last seed's full result (for detailed counters)."""
        return self.results[-1]


class _RunCache:
    """Memoises (workload, config, settings) cells within a process."""

    def __init__(self) -> None:
        self._cells: Dict[tuple, RunPoint] = {}

    def key(self, workload: str, config: CoreConfig,
            settings: ExperimentSettings) -> tuple:
        return (workload, config, settings)

    def get(self, key: tuple) -> Optional[RunPoint]:
        return self._cells.get(key)

    def put(self, key: tuple, point: RunPoint) -> None:
        self._cells[key] = point


_CACHE = _RunCache()


def run_config(
    workload: str,
    config: CoreConfig,
    settings: ExperimentSettings,
    use_cache: bool = True,
) -> RunPoint:
    """Run one (workload, config) cell, averaged over the seeds."""
    key = _CACHE.key(workload, config, settings)
    if use_cache:
        cached = _CACHE.get(key)
        if cached is not None:
            return cached
    results = [
        simulate(
            workload,
            config,
            instructions=settings.instructions,
            warmup=settings.warmup,
            detailed_warmup=settings.detailed_warmup,
            seed=seed,
        )
        for seed in settings.seeds
    ]
    point = RunPoint(
        workload=workload,
        config=config,
        ipc=mean([r.ipc for r in results]),
        results=results,
    )
    _CACHE.put(key, point)
    return point
