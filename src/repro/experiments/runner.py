"""Shared experiment machinery: settings, seed-averaged runs, campaigns.

Two entry points sit on top of :mod:`repro.harness`:

* :func:`run_config` — one (workload, config) cell, seed-averaged.
  Raises on failure; memoised in a bounded in-process LRU that reads
  through to the harness's persistent cache.
* :func:`run_campaign` — a batch of cells executed with isolation,
  timeouts and retries.  Never raises for cell failures: the returned
  :class:`Campaign` carries the completed points *and* a failure report,
  so figure drivers degrade to partial output instead of aborting.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import mean
from repro.core import CoreConfig, SimResult
from repro.harness import (
    Cell,
    CellFailure,
    HarnessSettings,
    default_harness,
    execute_cells,
)


@dataclass(frozen=True)
class ExperimentSettings:
    """Fidelity/runtime trade-off for experiment drivers.

    The defaults are sized for interactive use; the paper's figures are
    regenerated with the same settings by the benchmark suite.
    """

    instructions: int = 10_000
    warmup: int = 100_000
    detailed_warmup: int = 1_500
    seeds: Tuple[int, ...] = (0,)
    #: kernel backend spec (see :func:`repro.core.backend.parse_backend`);
    #: folded into cell keys via this dataclass's repr
    backend: str = "reference"

    @classmethod
    def quick(cls) -> "ExperimentSettings":
        """Small runs for tests (~seconds per configuration)."""
        return cls(instructions=3_000, warmup=30_000, detailed_warmup=500)

    @classmethod
    def full(cls) -> "ExperimentSettings":
        """Seed-averaged runs for the recorded EXPERIMENTS.md numbers."""
        return cls(instructions=12_000, seeds=(0, 1))


@dataclass
class RunPoint:
    """Seed-averaged result of one (workload, config) cell."""

    workload: str
    config: CoreConfig
    ipc: float
    results: List[SimResult] = field(default_factory=list)

    @property
    def last(self) -> SimResult:
        """The last seed's full result (for detailed counters)."""
        return self.results[-1]


class _RunCache:
    """Bounded LRU memo of (workload, config, settings) cells.

    This is the in-process layer; the harness's on-disk
    :class:`~repro.harness.ResultCache` sits underneath it (consulted by
    :func:`run_config` on a memo miss), making the pair a classic
    read-through hierarchy.
    """

    def __init__(self, maxsize: int = 128) -> None:
        self.maxsize = maxsize
        self._cells: "OrderedDict[tuple, RunPoint]" = OrderedDict()

    def key(self, workload: str, config: CoreConfig,
            settings: ExperimentSettings) -> tuple:
        return (workload, config, settings)

    def get(self, key: tuple) -> Optional[RunPoint]:
        point = self._cells.get(key)
        if point is not None:
            self._cells.move_to_end(key)
        return point

    def put(self, key: tuple, point: RunPoint) -> None:
        self._cells[key] = point
        self._cells.move_to_end(key)
        while len(self._cells) > self.maxsize:
            self._cells.popitem(last=False)

    def __len__(self) -> int:
        return len(self._cells)


_CACHE = _RunCache()


def _cells_for(
    workload: str, config: CoreConfig, settings: ExperimentSettings
) -> List[Cell]:
    """One harness cell per seed of a (workload, config) point."""
    return [
        Cell(workload=workload, config=config, settings=settings, seed=seed)
        for seed in settings.seeds
    ]


def _assemble_point(
    workload: str, config: CoreConfig, results: List[SimResult]
) -> RunPoint:
    return RunPoint(
        workload=workload,
        config=config,
        ipc=mean([r.ipc for r in results]),
        results=results,
    )


def run_config(
    workload: str,
    config: CoreConfig,
    settings: ExperimentSettings,
    use_cache: bool = True,
    harness: Optional[HarnessSettings] = None,
) -> RunPoint:
    """Run one (workload, config) cell, averaged over the seeds.

    Execution routes through :mod:`repro.harness`, so a configured
    harness brings subprocess isolation, timeouts, retries and the
    persistent cache to every experiment driver.  Raises the cell's
    classified :class:`~repro.errors.ReproError` if it ultimately fails.
    """
    harness = harness or default_harness()
    key = _CACHE.key(workload, config, settings)
    if use_cache:
        cached = _CACHE.get(key)
        if cached is not None:
            return cached
    outcomes = execute_cells(_cells_for(workload, config, settings), harness)
    for outcome in outcomes:
        if not outcome.ok:
            raise outcome.error
    point = _assemble_point(
        workload, config, [outcome.result for outcome in outcomes]
    )
    _CACHE.put(key, point)
    return point


@dataclass
class Campaign:
    """Partial results plus a failure report for a batch of cells.

    A point is present only if *every* seed of its cell succeeded;
    drivers render missing points as gaps rather than aborting the
    whole figure (graceful degradation).
    """

    settings: ExperimentSettings
    points: Dict[Tuple[str, CoreConfig], RunPoint] = field(default_factory=dict)
    failures: List[CellFailure] = field(default_factory=list)

    def point(self, workload: str, config: CoreConfig) -> Optional[RunPoint]:
        """The completed point for a cell, or None if any seed failed."""
        return self.points.get((workload, config))

    @property
    def complete(self) -> bool:
        return not self.failures

    def failure_report(self) -> str:
        """A rendered failure summary ('' when the campaign is clean)."""
        return render_failure_report(self.failures)


def render_failure_report(failures: Sequence[CellFailure]) -> str:
    """A rendered failure summary ('' for a clean run)."""
    if not failures:
        return ""
    lines = [f"{len(failures)} cell(s) failed (shown as n/a above):"]
    lines += [f"  {failure.describe()}" for failure in failures]
    return "\n".join(lines)


def run_campaign(
    pairs: Sequence[Tuple[str, CoreConfig]],
    settings: ExperimentSettings,
    harness: Optional[HarnessSettings] = None,
) -> Campaign:
    """Execute every (workload, config) pair, tolerating cell failures."""
    harness = harness or default_harness()
    campaign = Campaign(settings=settings)
    pending: List[Tuple[str, CoreConfig]] = []
    cells: List[Cell] = []
    seen = set()
    for workload, config in pairs:
        if (workload, config) in seen:
            continue
        seen.add((workload, config))
        memo = _CACHE.get(_CACHE.key(workload, config, settings))
        if memo is not None:
            campaign.points[(workload, config)] = memo
            continue
        pending.append((workload, config))
        cells.extend(_cells_for(workload, config, settings))
    outcomes = iter(execute_cells(cells, harness))
    for workload, config in pending:
        results: List[SimResult] = []
        failed = False
        for _ in settings.seeds:
            outcome = next(outcomes)
            if outcome.ok:
                results.append(outcome.result)
            else:
                campaign.failures.append(outcome.failure())
                failed = True
        if failed:
            continue
        point = _assemble_point(workload, config, results)
        campaign.points[(workload, config)] = point
        _CACHE.put(_CACHE.key(workload, config, settings), point)
    return campaign
