"""The §1 loop-framework tables (paper Figures 1 and 2).

Renders the loop inventory of a configured core — loop lengths, feedback
delays, loop delays, tight/loose classification and minimum
mis-speculation impact — plus the Alpha 21264 worked examples the paper
quotes (e.g. the 7-cycle minimum branch mis-speculation impact).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis import format_heading, format_table
from repro.core import CoreConfig
from repro.loops import alpha_21264_loops, loops_for_config


def _loop_rows(loops) -> list:
    rows = []
    for loop in loops:
        rows.append(
            [
                loop.name,
                loop.kind.value,
                f"{loop.initiation_stage}->{loop.resolution_stage}",
                loop.length,
                loop.feedback_delay,
                loop.loop_delay,
                "tight" if loop.is_tight else "loose",
                loop.min_misspeculation_impact,
            ]
        )
    return rows


def render_loop_inventory(config: Optional[CoreConfig] = None) -> str:
    """Text tables for the configured core and the 21264 examples."""
    config = config or CoreConfig.base()
    headers = [
        "loop", "hazard", "stages", "length", "feedback",
        "delay", "class", "min impact",
    ]
    sections = [
        format_heading(f"Micro-architectural loops of {config.label}"),
        format_table(headers, _loop_rows(loops_for_config(config))),
        "",
        format_heading("Alpha 21264 worked examples (paper Section 1)"),
        format_table(headers, _loop_rows(alpha_21264_loops())),
    ]
    return "\n".join(sections)
