"""Simultaneous multithreading support.

The base machine is an SMT design (§2); this package holds the fetch
arbitration policies.  Thread state itself lives with the pipeline
(:class:`repro.core.pipeline._ThreadState`).
"""

from repro.smt.policy import FETCH_POLICIES, choose_fetch_thread

__all__ = ["choose_fetch_thread", "FETCH_POLICIES"]
