"""SMT fetch arbitration policies.

``icount`` (the default, from Tullsen et al.) fetches for the thread
with the fewest instructions in the front end and issue queue; it
naturally throttles threads that are stalled or hogging the window —
the property the paper leans on when observing that SMT damps
loose-loop losses (§3.1: a mis-speculating thread recovers while the
other keeps doing useful work).  ``round_robin`` alternates eligible
threads blindly.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence


class FetchableThread(Protocol):
    """What a policy needs to know about a thread."""

    tid: int

    @property
    def icount(self) -> int:  # pragma: no cover - protocol
        ...


def _icount(threads: Sequence[FetchableThread], last_tid: int) -> Optional[FetchableThread]:
    best: Optional[FetchableThread] = None
    for thread in threads:
        if best is None or thread.icount < best.icount:
            best = thread
    return best


def _round_robin(threads: Sequence[FetchableThread], last_tid: int) -> Optional[FetchableThread]:
    if not threads:
        return None
    ordered: List[FetchableThread] = sorted(threads, key=lambda t: t.tid)
    for thread in ordered:
        if thread.tid > last_tid:
            return thread
    return ordered[0]


FETCH_POLICIES = {
    "icount": _icount,
    "round_robin": _round_robin,
}


def choose_fetch_thread(
    eligible: Sequence[FetchableThread],
    policy: str = "icount",
    last_tid: int = -1,
) -> Optional[FetchableThread]:
    """Pick the thread to fetch for this cycle among eligible threads."""
    try:
        chooser = FETCH_POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown fetch policy {policy!r}; known: {sorted(FETCH_POLICIES)}"
        ) from None
    return chooser(eligible, last_tid)
