"""Operation classes and their execution latencies.

Latencies follow the Alpha 21264-era numbers the paper's base machine
implies: single-cycle integer ALU (the tight forwarding loop of Figure 2
requires back-to-back dependent execution), multi-cycle multiply and
floating-point pipes, and loads whose total latency is one address
generation cycle plus a data-cache access of non-deterministic length
(the source of the load resolution loop).
"""

from __future__ import annotations

import enum


class OpClass(enum.Enum):
    """Classes of micro-operations understood by the pipeline."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FP_ADD = "fp_add"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    CALL = "call"
    RETURN = "return"
    NOP = "nop"
    MEM_BARRIER = "mem_barrier"

    @property
    def is_memory(self) -> bool:
        """Whether the op accesses the data cache."""
        return self in MEMORY_CLASSES

    @property
    def is_control(self) -> bool:
        """Whether the op can redirect the fetch stream."""
        return self in _CONTROL_CLASSES

    @property
    def is_conditional(self) -> bool:
        """Whether the op's direction must be predicted."""
        return self is OpClass.BRANCH

    @property
    def writes_register(self) -> bool:
        """Whether the op produces a register result.

        Stores, branches and barriers produce no register value; calls
        write the return-address register.
        """
        return self not in _NO_DEST_CLASSES


MEMORY_CLASSES = frozenset({OpClass.LOAD, OpClass.STORE})

_CONTROL_CLASSES = frozenset(
    {OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RETURN}
)

_NO_DEST_CLASSES = frozenset(
    {
        OpClass.STORE,
        OpClass.BRANCH,
        OpClass.JUMP,
        OpClass.RETURN,
        OpClass.NOP,
        OpClass.MEM_BARRIER,
    }
)

#: Execution latency in cycles, *excluding* the data-cache access of
#: loads and stores (that part is determined by the memory hierarchy at
#: execute time) and excluding all pipeline-traversal latencies.
DEFAULT_LATENCIES = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 7,
    OpClass.INT_DIV: 16,
    OpClass.FP_ADD: 4,
    OpClass.FP_MUL: 4,
    OpClass.FP_DIV: 12,
    OpClass.LOAD: 1,  # address generation; cache access is added on top
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.JUMP: 1,
    OpClass.CALL: 1,
    OpClass.RETURN: 1,
    OpClass.NOP: 1,
    OpClass.MEM_BARRIER: 1,
}
