"""Micro-op instruction set model.

The simulator is timing-directed and trace-driven: instructions carry
everything the pipeline needs to compute *when* things happen (operation
class, register identifiers, memory address, branch outcome), but no data
values.  This mirrors the way timing models such as ASIM separate timing
from functional emulation.

Public API
----------
``OpClass``
    Enumeration of operation classes with execution latencies.
``MicroOp``
    A static instruction as produced by a workload generator.
``DynInst``
    A dynamic (in-flight) instruction created at fetch time.
``ArchRegs``
    Architectural register-file constants (64 registers, ``r0`` hardwired
    to zero).
"""

from repro.isa.opclasses import (
    DEFAULT_LATENCIES,
    MEMORY_CLASSES,
    OpClass,
)
from repro.isa.registers import ZERO_REG, NUM_ARCH_REGS, ArchRegs
from repro.isa.instructions import DynInst, MicroOp

__all__ = [
    "OpClass",
    "DEFAULT_LATENCIES",
    "MEMORY_CLASSES",
    "MicroOp",
    "DynInst",
    "ArchRegs",
    "ZERO_REG",
    "NUM_ARCH_REGS",
]
