"""Static and dynamic instruction records.

``MicroOp`` is the static form a workload generator emits; it is immutable
and carries ground-truth behaviour (branch direction and target, effective
address) alongside the architectural register identifiers.

``DynInst`` is the mutable in-flight form the pipeline manipulates.  It
accumulates renamed register identifiers, timestamps for every pipeline
event, and the speculation state needed by the load-resolution and
operand-resolution loops.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.isa.opclasses import DEFAULT_LATENCIES, OpClass
from repro.isa.registers import ZERO_REG

#: Sentinel cycle value meaning "event has not happened yet".
NEVER = -1


@dataclass(frozen=True)
class MicroOp:
    """A static micro-operation produced by a workload generator.

    Parameters
    ----------
    pc:
        Program counter of the instruction.  Used by branch predictors
        and the BTB; distinct static branch sites must use distinct PCs.
    opclass:
        The operation class (see :class:`~repro.isa.OpClass`).
    srcs:
        Architectural source register identifiers (0, 1 or 2 of them).
        ``ZERO_REG`` sources create no dependence.
    dst:
        Architectural destination register, or ``None`` when the op does
        not write a register.
    address:
        Effective address for loads and stores; ``None`` otherwise.
    taken:
        Ground-truth direction for conditional branches; unconditional
        control transfers are always taken.
    target:
        Ground-truth target PC for control transfers.
    """

    pc: int
    opclass: OpClass
    srcs: Tuple[int, ...] = ()
    dst: Optional[int] = None
    address: Optional[int] = None
    taken: bool = False
    target: Optional[int] = None

    def __post_init__(self) -> None:
        if len(self.srcs) > 2:
            raise ValueError(f"at most two source operands supported: {self.srcs}")
        if self.dst is not None and not self.opclass.writes_register:
            raise ValueError(f"{self.opclass} cannot write a register")
        if self.opclass.is_memory and self.address is None:
            raise ValueError(f"{self.opclass} requires an effective address")

    @property
    def exec_latency(self) -> int:
        """Intrinsic execution latency (excluding cache access)."""
        return DEFAULT_LATENCIES[self.opclass]

    @property
    def real_srcs(self) -> Tuple[int, ...]:
        """Source registers that create true dependences (non-zero regs)."""
        return tuple(s for s in self.srcs if s != ZERO_REG)


_dyninst_uid = itertools.count()


@dataclass
class DynInst:
    """A dynamic, in-flight instruction.

    Timestamps are measured in simulator cycles and default to
    :data:`NEVER`.  The operand bookkeeping fields are only used when the
    DRA is enabled.
    """

    op: MicroOp
    thread: int
    uid: int = field(default_factory=lambda: next(_dyninst_uid))

    # --- renamed register state -----------------------------------------
    #: Physical registers backing each *real* source operand.
    src_pregs: List[int] = field(default_factory=list)
    #: Physical register allocated for the destination (None if no dest).
    dst_preg: Optional[int] = None
    #: Physical register previously mapped to the destination arch reg;
    #: freed at retire, restored on squash.
    prev_dst_preg: Optional[int] = None

    # --- cluster slotting ------------------------------------------------
    #: Functional-unit cluster assigned at decode (paper §2: "slotting").
    cluster: int = -1

    # --- pipeline timestamps ----------------------------------------------
    fetch_cycle: int = NEVER
    rename_cycle: int = NEVER
    insert_cycle: int = NEVER       # entered the issue queue
    issue_cycle: int = NEVER        # most recent issue
    first_issue_cycle: int = NEVER
    exec_start_cycle: int = NEVER   # most recent entry into execute
    complete_cycle: int = NEVER     # result available for consumers
    retire_cycle: int = NEVER

    # --- issue/speculation state -------------------------------------------
    #: Number of times the instruction issued (1 = no reissue).
    issue_count: int = 0
    #: True once the instruction has executed with all-valid operands.
    executed: bool = False
    #: True once the IQ entry has been confirmed and released.
    confirmed: bool = False
    #: True when the instruction was squashed (refetch recovery / trap).
    squashed: bool = False

    #: Earliest cycle a reissue may be selected (DRA operand-recovery gate).
    min_reissue_cycle: int = 0
    #: Whether the instruction currently occupies an issue-queue entry.
    in_iq: bool = False
    #: Load must wait for all older stores (store-wait bit set or
    #: conservative memory-dependence policy).
    memdep_wait: bool = False

    # --- DRA operand bookkeeping ---------------------------------------------
    #: Per-real-source flag: operand was pre-read from the register file
    #: during the DEC->IQ traversal (a *completed* operand).
    preread: List[bool] = field(default_factory=list)
    #: Per-real-source flag: operand sits in the IQ payload after an
    #: operand-miss recovery fetched it from the register file.
    payload_valid: List[bool] = field(default_factory=list)
    #: Per-real-source flag: operand already classified for Figure 9.
    operand_counted: List[bool] = field(default_factory=list)

    # --- memory outcome (filled at execute) ------------------------------------
    dcache_hit: Optional[bool] = None
    l2_hit: Optional[bool] = None
    dtlb_hit: Optional[bool] = None
    bank_conflict: bool = False

    # --- branch outcome (filled at fetch/execute) -------------------------------
    predicted_taken: Optional[bool] = None
    btb_hit: Optional[bool] = None
    mispredicted: bool = False

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DynInst) and other.uid == self.uid

    @property
    def opclass(self) -> OpClass:
        """Operation class of the underlying micro-op."""
        return self.op.opclass

    @property
    def is_load(self) -> bool:
        """Whether the instruction is a load."""
        return self.op.opclass is OpClass.LOAD

    @property
    def num_real_srcs(self) -> int:
        """Number of true source dependences."""
        return len(self.op.real_srcs)

    def describe(self) -> str:
        """A compact human-readable rendering for logs and debugging."""
        srcs = ",".join(f"r{s}" for s in self.op.srcs) or "-"
        dst = f"r{self.op.dst}" if self.op.dst is not None else "-"
        return (
            f"#{self.uid} t{self.thread} {self.op.opclass.value}"
            f" pc={self.op.pc:#x} {dst}<-{srcs}"
        )
