"""Architectural register namespace.

A flat space of 64 architectural registers per thread: identifiers 0-31
are the integer file and 32-63 the floating-point file, matching the
Alpha convention.  Register 0 is hardwired to zero — reading it creates
no dependence and writing it is discarded, which the workload generators
use to emit dependence-free instructions.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_ARCH_REGS = NUM_INT_REGS + NUM_FP_REGS

#: Reads of this register never create a dependence; writes are dropped.
ZERO_REG = 0

FIRST_FP_REG = NUM_INT_REGS


class ArchRegs:
    """Helpers for working with architectural register identifiers."""

    NUM_INT = NUM_INT_REGS
    NUM_FP = NUM_FP_REGS
    TOTAL = NUM_ARCH_REGS
    ZERO = ZERO_REG

    @staticmethod
    def is_valid(reg: int) -> bool:
        """Whether ``reg`` names an architectural register."""
        return 0 <= reg < NUM_ARCH_REGS

    @staticmethod
    def is_int(reg: int) -> bool:
        """Whether ``reg`` is in the integer file."""
        return 0 <= reg < FIRST_FP_REG

    @staticmethod
    def is_fp(reg: int) -> bool:
        """Whether ``reg`` is in the floating-point file."""
        return FIRST_FP_REG <= reg < NUM_ARCH_REGS

    @staticmethod
    def int_reg(index: int) -> int:
        """The architectural identifier of integer register ``index``."""
        if not 0 <= index < NUM_INT_REGS:
            raise ValueError(f"integer register index out of range: {index}")
        return index

    @staticmethod
    def fp_reg(index: int) -> int:
        """The architectural identifier of FP register ``index``."""
        if not 0 <= index < NUM_FP_REGS:
            raise ValueError(f"fp register index out of range: {index}")
        return FIRST_FP_REG + index
