"""repro — a reproduction of "Loose Loops Sink Chips" (HPCA 2002).

A cycle-level, out-of-order, SMT processor simulator built around the
paper's micro-architectural *loop* framework, including the paper's
contribution: the Distributed Register Algorithm (DRA), which moves the
register-file read out of the issue-to-execute path and serves operands
from a pre-read payload, a forwarding buffer, and per-cluster register
caches.

Quickstart::

    from repro import CoreConfig, simulate

    base = simulate("swim", CoreConfig.base(rf_read_latency=3))
    dra = simulate("swim", CoreConfig.with_dra(rf_read_latency=3))
    print(dra.ipc / base.ipc)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.errors import (
    CellCrashError,
    CellTimeoutError,
    ConfigError,
    ReproError,
    SimulationHangError,
    TransientCellError,
    VerificationError,
    WorkloadError,
)
from repro.core import (
    CoreConfig,
    CoreStats,
    DRAConfig,
    LoadRecovery,
    OperandSource,
    SimResult,
    Simulator,
    simulate,
)
from repro.loops import (
    Loop,
    LoopKind,
    alpha_21264_loops,
    attribute_slowdown,
    build_ledger,
    loops_for_config,
)
from repro.obs import EventBus, MetricsCollector, MetricsRegistry
from repro.presets import MACHINE_PRESETS, preset
from repro.workloads import (
    ALL_WORKLOADS,
    SPEC95_PROFILES,
    SyntheticTraceGenerator,
    WorkloadProfile,
    workload_profiles,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ConfigError",
    "WorkloadError",
    "SimulationHangError",
    "CellTimeoutError",
    "CellCrashError",
    "TransientCellError",
    "VerificationError",
    "CoreConfig",
    "DRAConfig",
    "LoadRecovery",
    "CoreStats",
    "OperandSource",
    "Simulator",
    "SimResult",
    "simulate",
    "Loop",
    "LoopKind",
    "alpha_21264_loops",
    "loops_for_config",
    "build_ledger",
    "attribute_slowdown",
    "EventBus",
    "MetricsCollector",
    "MetricsRegistry",
    "MACHINE_PRESETS",
    "preset",
    "ALL_WORKLOADS",
    "SPEC95_PROFILES",
    "WorkloadProfile",
    "SyntheticTraceGenerator",
    "workload_profiles",
    "__version__",
]
