"""Two-level cache hierarchy with TLB and main memory.

``MemoryHierarchy.load`` / ``store`` return a :class:`MemoryResult` whose
``latency`` is the cycles from access start to data availability — the
quantity the load resolution loop speculates on.  The default geometry is
scaled to the base machine of the paper (next-generation, 8-wide SMT).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.memory.cache import Cache, CacheConfig
from repro.memory.tlb import TLB, TLBConfig


@dataclass(frozen=True)
class HierarchyConfig:
    """Configuration for the full memory hierarchy."""

    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L1D", size_bytes=64 * 1024, line_bytes=64, assoc=2,
            hit_latency=3, banks=8,
        )
    )
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L1I", size_bytes=64 * 1024, line_bytes=64, assoc=2,
            hit_latency=1, banks=1,
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L2", size_bytes=1024 * 1024, line_bytes=64, assoc=8,
            hit_latency=12, banks=1,
        )
    )
    tlb: TLBConfig = field(default_factory=TLBConfig)
    memory_latency: int = 80
    bank_conflict_penalty: int = 3


@dataclass(frozen=True)
class MemoryResult:
    """Outcome of one data-side access.

    ``latency`` is total cycles until data availability.  ``l1_hit`` is
    False for misses *and* for bank conflicts — in both cases the load's
    latency differs from the predicted L1-hit latency, so the load
    resolution loop mis-speculates (§2.2.2).
    """

    latency: int
    l1_hit: bool
    l2_hit: Optional[bool]
    tlb_hit: bool
    bank_conflict: bool

    @property
    def as_predicted(self) -> bool:
        """Whether the access behaved like the predicted L1 hit."""
        return self.l1_hit and self.tlb_hit and not self.bank_conflict


class MemoryHierarchy:
    """L1 data / L1 instruction / unified L2 / main memory, plus a DTLB."""

    def __init__(self, config: Optional[HierarchyConfig] = None):
        self.config = config or HierarchyConfig()
        self.l1d = Cache(self.config.l1d)
        self.l1i = Cache(self.config.l1i)
        self.l2 = Cache(self.config.l2)
        self.dtlb = TLB(self.config.tlb)

    # -- data side ------------------------------------------------------------

    def load(self, addr: int, cycle: Optional[int] = None) -> MemoryResult:
        """Perform a data-side load access."""
        return self._data_access(addr, cycle)

    def store(self, addr: int, cycle: Optional[int] = None) -> MemoryResult:
        """Perform a data-side store access (write-allocate)."""
        return self._data_access(addr, cycle)

    def _data_access(self, addr: int, cycle: Optional[int]) -> MemoryResult:
        conflict = (
            cycle is not None and self.l1d.had_bank_conflict(addr, cycle)
        )
        tlb_hit = self.dtlb.access(addr)
        l1_hit = self.l1d.access(addr, cycle)
        l2_hit: Optional[bool] = None
        latency = self.l1d.config.hit_latency
        if not l1_hit:
            l2_hit = self.l2.access(addr)
            if l2_hit:
                latency += self.l2.config.hit_latency
            else:
                latency += self.l2.config.hit_latency + self.config.memory_latency
        if conflict:
            latency += self.config.bank_conflict_penalty
        if not tlb_hit:
            latency += self.config.tlb.miss_latency
        return MemoryResult(
            latency=latency,
            l1_hit=l1_hit,
            l2_hit=l2_hit,
            tlb_hit=tlb_hit,
            bank_conflict=conflict,
        )

    # -- instruction side ----------------------------------------------------------

    def fetch(self, addr: int) -> int:
        """Instruction fetch; returns added latency (0 on an L1I hit)."""
        if self.l1i.access(addr):
            return 0
        if self.l2.access(addr):
            return self.l2.config.hit_latency
        return self.l2.config.hit_latency + self.config.memory_latency

    def invalidate_all(self) -> None:
        """Empty every structure (cold-start control for experiments)."""
        self.l1d.invalidate_all()
        self.l1i.invalidate_all()
        self.l2.invalidate_all()
        self.dtlb.invalidate_all()
