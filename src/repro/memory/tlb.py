"""Data TLB model.

The paper attributes part of ``turb3d``'s pipeline-length sensitivity to
data-TLB misses, whose recovery starts "from the beginning of the
pipeline" (§3.1).  The TLB here is a fully associative, LRU translation
cache; a miss charges a fixed walk latency and the pipeline model
additionally applies its front-end recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class TLBConfig:
    """Geometry and timing of the TLB."""

    entries: int = 128
    page_bytes: int = 8192
    miss_latency: int = 30

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ValueError("TLB must have at least one entry")
        if self.page_bytes & (self.page_bytes - 1):
            raise ValueError("page size must be a power of two")


@dataclass
class TLBStats:
    """Access counters for the TLB."""

    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0 when idle)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class TLB:
    """Fully associative, LRU translation lookaside buffer."""

    def __init__(self, config: TLBConfig):
        self.config = config
        self.stats = TLBStats()
        self._pages: List[int] = []
        self._page_shift = config.page_bytes.bit_length() - 1

    def page_of(self, addr: int) -> int:
        """Virtual page number of ``addr``."""
        return addr >> self._page_shift

    def access(self, addr: int) -> bool:
        """Translate ``addr``; returns True on hit, filling on a miss."""
        self.stats.accesses += 1
        page = self.page_of(addr)
        if page in self._pages:
            self._pages.remove(page)
            self._pages.append(page)
            return True
        self.stats.misses += 1
        self._pages.append(page)
        if len(self._pages) > self.config.entries:
            self._pages.pop(0)
        return False

    def invalidate_all(self) -> None:
        """Empty the TLB."""
        self._pages = []
