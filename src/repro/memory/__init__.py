"""Memory hierarchy substrate.

Banked, set-associative caches with LRU replacement, a data TLB, and a
two-level hierarchy front-ending a fixed-latency main memory.  The
hierarchy returns a :class:`MemoryResult` describing where an access hit
and the total latency — the non-deterministic load latency that creates
the paper's load resolution loop.
"""

from repro.memory.cache import Cache, CacheConfig
from repro.memory.tlb import TLB, TLBConfig
from repro.memory.hierarchy import (
    HierarchyConfig,
    MemoryHierarchy,
    MemoryResult,
)

__all__ = [
    "Cache",
    "CacheConfig",
    "TLB",
    "TLBConfig",
    "MemoryHierarchy",
    "MemoryResult",
    "HierarchyConfig",
]
