"""Set-associative, banked cache model.

The model is timing-directed: it tracks tags (not data) and reports hits,
misses and bank conflicts.  Banking matters to the paper because a bank
conflict, like a miss, makes the load's latency non-deterministic and
trips the load resolution loop (§2.2.2: "whether the load will hit,
miss, or have a bank conflict in the cache is unknown").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level.

    Parameters
    ----------
    name:
        Label used in statistics output.
    size_bytes:
        Total capacity.  Must be ``line_bytes * assoc * num_sets`` with a
        power-of-two number of sets.
    line_bytes:
        Line size in bytes.
    assoc:
        Associativity (ways per set).
    hit_latency:
        Cycles from access to data availability on a hit.
    banks:
        Number of independently addressed banks.  A second access to the
        same bank in the same cycle suffers a conflict.
    """

    name: str
    size_bytes: int
    line_bytes: int = 64
    assoc: int = 2
    hit_latency: int = 3
    banks: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.size_bytes % (self.line_bytes * self.assoc):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"line*assoc ({self.line_bytes}*{self.assoc})"
            )
        if not _is_power_of_two(self.line_bytes):
            raise ValueError(f"{self.name}: line size must be a power of two")
        if not _is_power_of_two(self.banks):
            raise ValueError(f"{self.name}: bank count must be a power of two")
        if not _is_power_of_two(self.num_sets):
            raise ValueError(f"{self.name}: set count must be a power of two")
        if self.hit_latency < 1:
            raise ValueError(f"{self.name}: hit latency must be >= 1")

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.line_bytes * self.assoc)


@dataclass
class CacheStats:
    """Access counters for one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    bank_conflicts: int = 0
    evictions: int = 0

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0 when idle)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class Cache:
    """A set-associative cache with true-LRU replacement.

    The cache is demand-filled: every miss allocates the line (loads and
    stores both allocate, i.e. write-allocate).  Each set is an ordered
    list of tags, most recently used last.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        self._sets: List[List[int]] = [[] for _ in range(config.num_sets)]
        self._line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = config.num_sets - 1
        self._bank_mask = config.banks - 1
        # cycle -> {bank index} of banks already used that cycle
        self._bank_use_cycle: int = -1
        self._banks_in_use: Dict[int, int] = {}

    # -- address decomposition ------------------------------------------------

    def line_addr(self, addr: int) -> int:
        """The line-granular address (tag+index bits) of ``addr``."""
        return addr >> self._line_shift

    def set_index(self, addr: int) -> int:
        """The set index of ``addr``."""
        return self.line_addr(addr) & self._set_mask

    def bank_index(self, addr: int) -> int:
        """The bank ``addr`` maps to (line-interleaved)."""
        return self.line_addr(addr) & self._bank_mask

    # -- operations ----------------------------------------------------------

    def probe(self, addr: int) -> bool:
        """Whether ``addr`` currently hits, without updating any state."""
        line = self.line_addr(addr)
        return line in self._sets[self.set_index(addr)]

    def access(self, addr: int, cycle: Optional[int] = None) -> bool:
        """Access ``addr``; returns True on hit.

        Misses allocate the line (evicting LRU).  When ``cycle`` is given,
        bank-conflict tracking is performed: a second same-cycle access to
        the same bank is recorded in ``stats.bank_conflicts`` (the caller
        decides what penalty to charge).
        """
        self.stats.accesses += 1
        if cycle is not None:
            self._track_bank(addr, cycle)
        line = self.line_addr(addr)
        ways = self._sets[self.set_index(addr)]
        if line in ways:
            ways.remove(line)
            ways.append(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        ways.append(line)
        if len(ways) > self.config.assoc:
            ways.pop(0)
            self.stats.evictions += 1
        return False

    def had_bank_conflict(self, addr: int, cycle: int) -> bool:
        """Whether an access to ``addr`` at ``cycle`` conflicts on its bank.

        Must be called *before* :meth:`access` registers the access; the
        hierarchy wraps this ordering.
        """
        if self.config.banks <= 1:
            return False
        if cycle != self._bank_use_cycle:
            return False
        return self._banks_in_use.get(self.bank_index(addr), 0) > 0

    def _track_bank(self, addr: int, cycle: int) -> None:
        if self.config.banks <= 1:
            return
        if cycle != self._bank_use_cycle:
            self._bank_use_cycle = cycle
            self._banks_in_use = {}
        bank = self.bank_index(addr)
        if self._banks_in_use.get(bank, 0) > 0:
            self.stats.bank_conflicts += 1
        self._banks_in_use[bank] = self._banks_in_use.get(bank, 0) + 1

    def invalidate_all(self) -> None:
        """Empty the cache (used by tests and warmup control)."""
        self._sets = [[] for _ in range(self.config.num_sets)]

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(ways) for ways in self._sets)
