"""Structured exception hierarchy for the whole reproduction.

Every failure the experiment harness has to reason about is an instance
of :class:`ReproError`; the subclass encodes the *recovery policy*:

* :class:`ConfigError` / :class:`WorkloadError` — the cell itself is
  malformed.  Deterministic, never retried.
* :class:`SimulationHangError` — the pipeline's deadlock detector fired.
  Deterministic (the simulator is seeded), never retried; carries a
  :class:`HangSnapshot` so the CLI can render *where* the machine wedged.
* :class:`CellTimeoutError` / :class:`CellCrashError` /
  :class:`TransientCellError` — the worker process hung, died, or hit an
  explicitly transient fault.  Retryable with backoff.
* :class:`VerificationError` — the verification layer
  (:mod:`repro.verify`) found invariant violations in an otherwise
  successful run.  Deterministic, never retried.

``ConfigError`` doubles as a ``ValueError`` so call sites written
against the built-in exception keep working.  ``WorkloadError`` used to
double as a ``KeyError`` the same way; that wart is gone — unknown
workload names raise a plain :class:`WorkloadError` (the transitional
``WorkloadKeyError`` shim served its one scheduled release and has been
deleted).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


class ReproError(Exception):
    """Base class of every structured failure in this project."""


class ConfigError(ReproError, ValueError):
    """Invalid simulation parameters or machine configuration."""


class WorkloadError(ReproError):
    """Unknown or unresolvable workload name."""


class VerificationError(ReproError):
    """The verification layer found invariant violations.

    The run itself completed; what failed is the machine's claimed
    behaviour.  Deterministic (seeded simulation), never retried.
    ``violations`` carries the rendered violation records when raised
    in-process (they do not survive the harness's worker pipe; the
    message always carries a summary).
    """

    def __init__(self, message: str, violations: Tuple = ()):
        super().__init__(message)
        self.violations = tuple(violations)


@dataclass(frozen=True)
class HangSnapshot:
    """Diagnostic state captured when the deadlock detector fires."""

    cycle: int
    last_retire_cycle: int
    retired: int
    inflight: int
    #: stage name -> instructions currently occupying it
    stage_occupancy: Dict[str, int] = field(default_factory=dict)
    #: one-line description of the oldest un-retired instruction
    oldest_instruction: Optional[str] = None

    def describe(self) -> str:
        """A multi-line report suitable for the CLI."""
        lines = [
            f"deadlock at cycle {self.cycle} "
            f"(no retire since cycle {self.last_retire_cycle}, "
            f"{self.retired} retired, {self.inflight} in flight)",
            "stage occupancy:",
        ]
        for stage, count in self.stage_occupancy.items():
            lines.append(f"  {stage:12s} {count:6d}")
        if self.oldest_instruction:
            lines.append(f"oldest in-flight: {self.oldest_instruction}")
        return "\n".join(lines)


class SimulationHangError(ReproError, RuntimeError):
    """The pipeline stopped retiring instructions (deadlock detector).

    Subclasses ``RuntimeError`` for compatibility with callers of the
    original bare-``RuntimeError`` deadlock raise.
    """

    def __init__(self, message: str, snapshot: Optional[HangSnapshot] = None):
        super().__init__(message)
        self.snapshot = snapshot


class CellTimeoutError(ReproError):
    """A worker subprocess exceeded its wall-clock budget and was killed."""

    def __init__(self, message: str, timeout: Optional[float] = None):
        super().__init__(message)
        self.timeout = timeout


class CellCrashError(ReproError):
    """A worker subprocess died (non-zero exit, signal, or raw exception)."""

    def __init__(self, message: str, exitcode: Optional[int] = None):
        super().__init__(message)
        self.exitcode = exitcode


class TransientCellError(ReproError):
    """An explicitly transient failure; retrying is expected to succeed."""


#: Failure classes the harness retries (with capped exponential backoff).
RETRYABLE_ERRORS: Tuple[type, ...] = (
    CellTimeoutError,
    CellCrashError,
    TransientCellError,
)


def is_retryable(error: BaseException) -> bool:
    """Whether the harness should re-run the cell after this failure."""
    return isinstance(error, RETRYABLE_ERRORS)
