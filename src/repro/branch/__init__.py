"""Branch prediction substrate.

Direction predictors (bimodal, gshare, tournament), a branch target
buffer and a return-address stack.  The fetch stage uses these to
speculate through the branch resolution loop; mis-speculations cost the
full fetch-to-execute traversal plus queueing (the paper's §1 framework).
"""

from repro.branch.predictors import (
    BimodalPredictor,
    DirectionPredictor,
    GsharePredictor,
    LocalHistoryPredictor,
    StaticTakenPredictor,
    TournamentPredictor,
    make_predictor,
)
from repro.branch.btb import BTB, BTBConfig
from repro.branch.ras import ReturnAddressStack

__all__ = [
    "DirectionPredictor",
    "StaticTakenPredictor",
    "BimodalPredictor",
    "GsharePredictor",
    "LocalHistoryPredictor",
    "TournamentPredictor",
    "make_predictor",
    "BTB",
    "BTBConfig",
    "ReturnAddressStack",
]
