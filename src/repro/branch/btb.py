"""Branch target buffer.

A set-associative PC-to-target cache.  A predicted-taken branch that
misses in the BTB cannot be redirected in the same cycle; the fetch unit
charges a short bubble and the entry is filled at resolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class BTBConfig:
    """Geometry of the branch target buffer."""

    entries: int = 2048
    assoc: int = 4
    miss_bubble: int = 2

    def __post_init__(self) -> None:
        if self.entries % self.assoc:
            raise ValueError("BTB entries must divide evenly into ways")
        sets = self.entries // self.assoc
        if sets & (sets - 1):
            raise ValueError("BTB set count must be a power of two")


@dataclass
class BTBStats:
    """Lookup counters."""

    lookups: int = 0
    hits: int = 0


class BTB:
    """Set-associative branch target buffer with LRU replacement."""

    def __init__(self, config: Optional[BTBConfig] = None):
        self.config = config or BTBConfig()
        self.stats = BTBStats()
        self._num_sets = self.config.entries // self.config.assoc
        self._sets: List[List[Tuple[int, int]]] = [
            [] for _ in range(self._num_sets)
        ]

    def _set_for(self, pc: int) -> List[Tuple[int, int]]:
        # word-granular index: instructions are 4-byte aligned
        return self._sets[(pc >> 2) & (self._num_sets - 1)]

    def lookup(self, pc: int) -> Optional[int]:
        """Predicted target of the branch at ``pc``, or None on a miss."""
        self.stats.lookups += 1
        ways = self._set_for(pc)
        for i, (tag, target) in enumerate(ways):
            if tag == pc:
                ways.append(ways.pop(i))
                self.stats.hits += 1
                return target
        return None

    def install(self, pc: int, target: int) -> None:
        """Fill or update the entry for ``pc`` at branch resolution."""
        ways = self._set_for(pc)
        for i, (tag, _) in enumerate(ways):
            if tag == pc:
                ways.pop(i)
                break
        ways.append((pc, target))
        if len(ways) > self.config.assoc:
            ways.pop(0)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0 when idle)."""
        if self.stats.lookups == 0:
            return 0.0
        return self.stats.hits / self.stats.lookups
