"""Branch direction predictors.

All predictors share the two-bit saturating-counter building block of
the Alpha-era designs the paper assumes.  The tournament predictor is a
simplified 21264-style chooser between a per-PC (bimodal) and a
global-history (gshare) component.
"""

from __future__ import annotations

from dataclasses import dataclass


class _CounterTable:
    """A table of two-bit saturating counters.

    Counters count 0..3; values >= 2 predict taken.  Tables are sized in
    entries (power of two) and indexed by the caller.
    """

    def __init__(self, entries: int, initial: int = 1):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"table entries must be a power of two: {entries}")
        if not 0 <= initial <= 3:
            raise ValueError(f"counter initial value out of range: {initial}")
        self.entries = entries
        self.mask = entries - 1
        self._counters = [initial] * entries

    def predict(self, index: int) -> bool:
        return self._counters[index & self.mask] >= 2

    def update(self, index: int, taken: bool) -> None:
        i = index & self.mask
        value = self._counters[i]
        if taken:
            if value < 3:
                self._counters[i] = value + 1
        elif value > 0:
            self._counters[i] = value - 1


class DirectionPredictor:
    """Interface for branch direction predictors."""

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        raise NotImplementedError

    def update(self, pc: int, taken: bool) -> None:
        """Train with the resolved direction of the branch at ``pc``."""
        raise NotImplementedError


class StaticTakenPredictor(DirectionPredictor):
    """Always predicts taken — the degenerate baseline."""

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        return None


def _pc_index(pc: int) -> int:
    """Word-granular PC index (instructions are 4-byte aligned)."""
    return pc >> 2


class BimodalPredictor(DirectionPredictor):
    """Per-PC two-bit counters."""

    def __init__(self, entries: int = 4096):
        self._table = _CounterTable(entries)

    def predict(self, pc: int) -> bool:
        return self._table.predict(_pc_index(pc))

    def update(self, pc: int, taken: bool) -> None:
        self._table.update(_pc_index(pc), taken)


class GsharePredictor(DirectionPredictor):
    """Global-history predictor: PC xor history indexes the counters."""

    def __init__(self, entries: int = 4096, history_bits: int = 12):
        self._table = _CounterTable(entries)
        self._history = 0
        self._history_mask = (1 << history_bits) - 1

    def _index(self, pc: int) -> int:
        return _pc_index(pc) ^ self._history

    def predict(self, pc: int) -> bool:
        return self._table.predict(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        self._table.update(self._index(pc), taken)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask


class LocalHistoryPredictor(DirectionPredictor):
    """Two-level local predictor (the 21264's local component).

    A per-PC history table records each branch's recent directions; the
    pattern of those directions indexes a shared table of counters.
    Learns per-branch periodic patterns (loop trip counts) that plain
    two-bit counters cannot.
    """

    def __init__(
        self,
        history_entries: int = 1024,
        history_bits: int = 10,
        pattern_entries: int = 1024,
    ):
        if history_entries <= 0 or history_entries & (history_entries - 1):
            raise ValueError("history entries must be a power of two")
        self._histories = [0] * history_entries
        self._history_mask = (1 << history_bits) - 1
        self._index_mask = history_entries - 1
        self._patterns = _CounterTable(pattern_entries)

    def _history_of(self, pc: int) -> int:
        return self._histories[_pc_index(pc) & self._index_mask]

    def predict(self, pc: int) -> bool:
        return self._patterns.predict(self._history_of(pc))

    def update(self, pc: int, taken: bool) -> None:
        slot = _pc_index(pc) & self._index_mask
        history = self._histories[slot]
        self._patterns.update(history, taken)
        self._histories[slot] = (
            (history << 1) | int(taken)
        ) & self._history_mask


class TournamentPredictor(DirectionPredictor):
    """Chooser-based hybrid of bimodal and gshare components.

    The chooser table is trained toward whichever component was correct
    when the two disagree, in the style of the 21264's local/global
    tournament predictor.
    """

    def __init__(
        self,
        entries: int = 4096,
        history_bits: int = 12,
        chooser_entries: int = 4096,
    ):
        self.bimodal = BimodalPredictor(entries)
        self.gshare = GsharePredictor(entries, history_bits)
        self._chooser = _CounterTable(chooser_entries, initial=2)

    def predict(self, pc: int) -> bool:
        if self._chooser.predict(_pc_index(pc)):
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        bimodal_correct = self.bimodal.predict(pc) == taken
        gshare_correct = self.gshare.predict(pc) == taken
        if bimodal_correct != gshare_correct:
            self._chooser.update(_pc_index(pc), taken=gshare_correct)
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, taken)


class ProbedPredictor(DirectionPredictor):
    """Transparent tracing decorator around any direction predictor.

    Emits a :class:`~repro.obs.events.PredictorEvent` per training
    update, re-running the (pure) ``predict`` to pair the prediction
    with the resolved direction.  Installed by
    :meth:`~repro.core.pipeline.Simulator.attach_obs`; never present in
    untraced runs.
    """

    def __init__(self, inner: DirectionPredictor):
        self.inner = inner
        self.bus = None
        #: callable() -> current simulator cycle
        self.clock = None

    def predict(self, pc: int) -> bool:
        return self.inner.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        if self.bus is not None:
            from repro.obs.events import PredictorEvent

            self.bus.emit(PredictorEvent(
                cycle=self.clock() if self.clock is not None else 0,
                pc=pc,
                predicted=self.inner.predict(pc),
                taken=taken,
            ))
        self.inner.update(pc, taken)


@dataclass(frozen=True)
class PredictorSpec:
    """Named predictor configuration used by :func:`make_predictor`."""

    kind: str = "tournament"
    entries: int = 4096
    history_bits: int = 12


def make_predictor(spec: PredictorSpec) -> DirectionPredictor:
    """Construct a predictor from a :class:`PredictorSpec`."""
    if spec.kind == "taken":
        return StaticTakenPredictor()
    if spec.kind == "bimodal":
        return BimodalPredictor(spec.entries)
    if spec.kind == "gshare":
        return GsharePredictor(spec.entries, spec.history_bits)
    if spec.kind == "local":
        return LocalHistoryPredictor(
            history_entries=spec.entries,
            history_bits=spec.history_bits,
            pattern_entries=spec.entries,
        )
    if spec.kind == "tournament":
        return TournamentPredictor(spec.entries, spec.history_bits)
    raise ValueError(f"unknown predictor kind: {spec.kind!r}")
