"""Return-address stack.

Calls push the fall-through PC; returns pop it.  The stack is a fixed
depth circular structure — overflow silently wraps (oldest entry lost),
matching hardware behaviour.
"""

from __future__ import annotations

from typing import List, Optional


class ReturnAddressStack:
    """Fixed-depth return address predictor."""

    def __init__(self, depth: int = 16):
        if depth <= 0:
            raise ValueError("RAS depth must be positive")
        self.depth = depth
        self._stack: List[int] = []
        self.pushes = 0
        self.pops = 0
        self.underflows = 0

    def push(self, return_pc: int) -> None:
        """Record the return address of a call."""
        self.pushes += 1
        self._stack.append(return_pc)
        if len(self._stack) > self.depth:
            self._stack.pop(0)

    def pop(self) -> Optional[int]:
        """Predicted target for a return; None if the stack is empty."""
        self.pops += 1
        if not self._stack:
            self.underflows += 1
            return None
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)
