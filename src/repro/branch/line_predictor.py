"""Next-line predictor (the paper's canonical *tight* loop).

Figure 2's first example: "the next line prediction in the current
cycle is needed by the line predictor to determine the instructions to
fetch in the next cycle" — a loop with delay one, constraining cycle
time rather than costing IPC directly.  The 21264's line predictor
guesses the next fetch line before the branch predictor/BTB weigh in;
a line mispredict costs a single fetch bubble even when the slower
predictors are right.

The model: a direct-mapped table of line -> next-line entries, trained
on the observed fetch stream.  The pipeline charges ``bubble`` cycles
whenever the prediction made from the previous fetch line disagrees
with the line actually fetched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class LinePredictorConfig:
    """Geometry and cost of the next-line predictor."""

    entries: int = 1024
    line_bytes: int = 32
    #: fetch bubble charged on a line mispredict (0 disables the model)
    bubble: int = 1

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.entries & (self.entries - 1):
            raise ValueError("line predictor entries must be a power of two")
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line size must be a power of two")
        if self.bubble < 0:
            raise ValueError("bubble cannot be negative")


class LinePredictor:
    """Direct-mapped next-fetch-line predictor."""

    def __init__(self, config: Optional[LinePredictorConfig] = None):
        self.config = config or LinePredictorConfig()
        self._table: List[Optional[int]] = [None] * self.config.entries
        self._shift = self.config.line_bytes.bit_length() - 1
        self._mask = self.config.entries - 1
        self.predictions = 0
        self.mispredictions = 0

    def line_of(self, pc: int) -> int:
        """Fetch-line number of ``pc``."""
        return pc >> self._shift

    def predict(self, current_pc: int) -> Optional[int]:
        """Predicted next fetch line after the line of ``current_pc``."""
        return self._table[self.line_of(current_pc) & self._mask]

    def observe(self, current_pc: int, next_pc: int) -> bool:
        """Record the observed transition; returns True on a correct
        prediction (trains the entry either way)."""
        predicted = self.predict(current_pc)
        actual = self.line_of(next_pc)
        self.predictions += 1
        correct = predicted == actual
        if not correct:
            self.mispredictions += 1
            self._table[self.line_of(current_pc) & self._mask] = actual
        return correct

    @property
    def mispredict_rate(self) -> float:
        """Fraction of fetch-line transitions mispredicted."""
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions
