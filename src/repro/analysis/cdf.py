"""Empirical cumulative distribution functions.

Figure 6 of the paper is the CDF of the time between the availability of
an instruction's first and second operands; the simulator collects the
samples and this class turns them into the plotted curve.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Iterable, List, Sequence, Tuple


class EmpiricalCDF:
    """An empirical CDF over integer-valued samples."""

    def __init__(self, samples: Iterable[int]):
        self._samples: List[int] = sorted(samples)
        if not self._samples:
            raise ValueError("CDF requires at least one sample")

    def __len__(self) -> int:
        return len(self._samples)

    def at(self, x: float) -> float:
        """P(sample <= x)."""
        return bisect_right(self._samples, x) / len(self._samples)

    def quantile(self, q: float) -> int:
        """Smallest x with at(x) >= q.

        The sorted sample at rank ceil(q*n) is the smallest value whose
        cumulative fraction reaches q (``int(q*n)`` would sit one rank
        low whenever q*n is not an integer).
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        n = len(self._samples)
        index = min(n - 1, max(0, math.ceil(q * n) - 1))
        return self._samples[index]

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples."""
        return sum(self._samples) / len(self._samples)

    @property
    def max(self) -> int:
        """Largest sample."""
        return self._samples[-1]

    def series(self, xs: Sequence[float]) -> List[Tuple[float, float]]:
        """(x, P(sample <= x)) pairs for plotting/printing."""
        return [(x, self.at(x)) for x in xs]

    def tail_fraction(self, x: float) -> float:
        """P(sample > x) — the long-tail measure of Figure 6."""
        return 1.0 - self.at(x)
