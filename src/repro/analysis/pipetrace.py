"""Pipeline tracing: per-instruction stage timelines ("pipeview").

Renders the journey of each retired instruction through the pipe as a
text Gantt chart, the way ASIM-family tools visualise their models::

    #1017 t0 load      F....R..Q....I----X..C.....T
    #1018 t0 int_alu   .F....R..Q......I----X.T

Legend: F fetch, R rename, Q IQ insert, I issue, X execute, C complete
(result available), T retire; ``-`` marks the IQ->EX traversal, ``.``
waiting.  Reissued instructions show their *last* issue; the reissue
count is printed alongside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.core.config import CoreConfig
from repro.core.pipeline import Simulator
from repro.workloads import WorkloadProfile, workload_profiles


@dataclass(frozen=True)
class TraceRow:
    """Stage timestamps of one retired instruction."""

    uid: int
    thread: int
    opclass: str
    pc: int
    fetch: int
    rename: int
    insert: int
    issue: int
    exec_start: int
    complete: int
    retire: int
    issue_count: int

    @property
    def latency(self) -> int:
        """Fetch-to-retire lifetime in cycles."""
        return self.retire - self.fetch


def collect_trace(
    workload: Union[str, List[WorkloadProfile]],
    config: Optional[CoreConfig] = None,
    instructions: int = 40,
    skip: int = 2_000,
    warmup: int = 30_000,
    seed: int = 0,
) -> List[TraceRow]:
    """Run a simulation and capture ``instructions`` retired rows.

    ``skip`` instructions retire (after functional ``warmup``) before
    capture starts, so the trace shows steady-state behaviour.
    """
    if isinstance(workload, str):
        profiles = workload_profiles(workload)
    else:
        profiles = list(workload)
    config = config or CoreConfig.base()
    simulator = Simulator(config, profiles, seed=seed)
    if warmup:
        simulator.functional_warmup(warmup)
    rows: List[TraceRow] = []
    captured = 0

    def hook(inst) -> None:
        nonlocal captured
        if simulator.retired <= skip or captured >= instructions:
            return
        captured += 1
        rows.append(
            TraceRow(
                uid=inst.uid,
                thread=inst.thread,
                opclass=inst.op.opclass.value,
                pc=inst.op.pc,
                fetch=inst.fetch_cycle,
                rename=inst.rename_cycle,
                insert=inst.insert_cycle,
                issue=inst.issue_cycle,
                exec_start=inst.exec_start_cycle,
                complete=inst.complete_cycle,
                retire=inst.retire_cycle,
                issue_count=inst.issue_count,
            )
        )

    simulator.retire_hook = hook
    simulator.run(skip + instructions + 64)
    return rows[:instructions]


def render_pipetrace(rows: List[TraceRow], width: int = 100) -> str:
    """Render trace rows as an aligned text Gantt chart."""
    if not rows:
        return "(empty trace)"
    origin = min(row.fetch for row in rows)
    span = max(row.retire for row in rows) - origin + 1
    lines = [
        f"pipetrace: {len(rows)} instructions, cycles "
        f"{origin}..{origin + span - 1}"
        + (" (clipped)" if span > width else ""),
        "legend: F fetch  R rename  Q insert  I issue  - IQ->EX  "
        "X execute  C complete  T retire",
        "",
    ]
    for row in rows:
        chart = [" "] * min(span, width)

        def mark(cycle: int, char: str) -> None:
            offset = cycle - origin
            if 0 <= offset < len(chart):
                # later stages overwrite idle fillers, never real marks
                if chart[offset] in (" ", "."):
                    chart[offset] = char

        for start, end in ((row.fetch, row.retire),):
            for cycle in range(start, min(end, origin + len(chart))):
                mark(cycle, ".")
        for cycle in range(row.issue, row.exec_start):
            mark(cycle, "-")
        mark(row.fetch, "F")
        mark(row.rename, "R")
        mark(row.insert, "Q")
        mark(row.issue, "I")
        mark(row.exec_start, "X")
        mark(row.complete, "C")
        mark(row.retire, "T")
        reissue = f" (issues={row.issue_count})" if row.issue_count > 1 else ""
        lines.append(
            f"#{row.uid:<7d} t{row.thread} {row.opclass:<9s} "
            f"{''.join(chart)}{reissue}"
        )
    return "\n".join(lines)
