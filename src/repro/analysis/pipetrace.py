"""Pipeline tracing: per-instruction stage timelines ("pipeview").

Renders the journey of each instruction through the pipe as a text
Gantt chart, the way ASIM-family tools visualise their models::

    #1017 t0 load      F....R..Q....I----X..C.....T
    #1018 t0 int_alu   .F....R..Q..i...I----X.T

Legend: F fetch, R rename, Q IQ insert, I (final) issue, X execute,
C complete (result available), T retire; ``i`` marks earlier issues of
a replayed instruction, ``s`` a squash, ``-`` the IQ->EX traversal,
``.`` waiting.

Stage timestamps come from two sources: the retire hook supplies the
authoritative per-instruction record, while an attached
:class:`~repro.obs.bus.EventBus` supplies *every* issue and squash
timestamp — a replayed instruction's earlier issues are overwritten on
the instruction object, and a squashed instruction never reaches the
retire hook at all, so neither is recoverable without the event stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.core.config import CoreConfig
from repro.core.pipeline import Simulator
from repro.obs.bus import EventBus
from repro.obs.events import (
    FetchEvent,
    IQInsertEvent,
    IssueEvent,
    RenameEvent,
    SquashEvent,
)
from repro.workloads import WorkloadProfile, workload_profiles


@dataclass(frozen=True)
class TraceRow:
    """Stage timestamps of one traced instruction.

    ``issue``/``exec_start``/``complete``/``retire`` are the *final*
    attempt's timestamps (-1 when the stage was never reached);
    ``issues`` lists every issue timestamp including replays, and
    ``squashes`` every squash.  Squashed instructions appear only when
    the trace was collected with ``include_squashed=True``.
    """

    uid: int
    thread: int
    opclass: str
    pc: int
    fetch: int
    rename: int
    insert: int
    issue: int
    exec_start: int
    complete: int
    retire: int
    issue_count: int
    #: every issue timestamp, oldest first (replays included)
    issues: Tuple[int, ...] = ()
    #: squash timestamps (non-empty only for squashed rows)
    squashes: Tuple[int, ...] = ()

    @property
    def latency(self) -> int:
        """Fetch-to-retire lifetime in cycles (fetch-to-squash when the
        instruction never retired)."""
        return self.end - self.fetch

    @property
    def squashed(self) -> bool:
        """Whether this row records a squashed (never retired) instruction."""
        return self.retire < 0

    @property
    def end(self) -> int:
        """Last cycle of the row's lifetime (retire or final squash)."""
        if self.retire >= 0:
            return self.retire
        events = [self.fetch, self.rename, self.insert, self.issue,
                  self.exec_start, self.complete]
        events.extend(self.issues)
        events.extend(self.squashes)
        return max(events)


class _EventLog:
    """Per-uid issue/squash (and squashed-row stage) records."""

    def __init__(self, bus: EventBus):
        self.issues: Dict[int, List[int]] = {}
        self.squashes: Dict[int, List[int]] = {}
        self.fetches: Dict[int, FetchEvent] = {}
        self.renames: Dict[int, int] = {}
        self.inserts: Dict[int, int] = {}
        bus.subscribe(FetchEvent, self._on_fetch)
        bus.subscribe(RenameEvent, self._on_rename)
        bus.subscribe(IQInsertEvent, self._on_insert)
        bus.subscribe(IssueEvent, self._on_issue)
        bus.subscribe(SquashEvent, self._on_squash)

    def _on_fetch(self, event: FetchEvent) -> None:
        self.fetches[event.uid] = event

    def _on_rename(self, event: RenameEvent) -> None:
        self.renames[event.uid] = event.cycle

    def _on_insert(self, event: IQInsertEvent) -> None:
        self.inserts[event.uid] = event.cycle

    def _on_issue(self, event: IssueEvent) -> None:
        self.issues.setdefault(event.uid, []).append(event.cycle)

    def _on_squash(self, event: SquashEvent) -> None:
        self.squashes.setdefault(event.uid, []).append(event.cycle)

    def squashed_row(self, uid: int) -> Optional[TraceRow]:
        """Reconstruct a row for an instruction that never retired."""
        fetch = self.fetches.get(uid)
        if fetch is None:
            return None
        issues = tuple(self.issues.get(uid, ()))
        return TraceRow(
            uid=uid,
            thread=fetch.thread,
            opclass=fetch.opclass,
            pc=fetch.pc,
            fetch=fetch.cycle,
            rename=self.renames.get(uid, -1),
            insert=self.inserts.get(uid, -1),
            issue=issues[-1] if issues else -1,
            exec_start=-1,
            complete=-1,
            retire=-1,
            issue_count=len(issues),
            issues=issues,
            squashes=tuple(self.squashes.get(uid, ())),
        )


def collect_trace(
    workload: Union[str, List[WorkloadProfile]],
    config: Optional[CoreConfig] = None,
    instructions: int = 40,
    skip: int = 2_000,
    warmup: int = 30_000,
    seed: int = 0,
    include_squashed: bool = False,
) -> List[TraceRow]:
    """Run a simulation and capture ``instructions`` retired rows.

    ``skip`` instructions retire (after functional ``warmup``) before
    capture starts, so the trace shows steady-state behaviour.  With
    ``include_squashed=True``, instructions squashed inside the capture
    window are appended as extra rows (reconstructed from the event
    stream; marked by :attr:`TraceRow.squashed`).
    """
    if isinstance(workload, str):
        profiles = workload_profiles(workload)
    else:
        profiles = list(workload)
    config = config or CoreConfig.base()
    simulator = Simulator(config, profiles, seed=seed)
    if warmup:
        simulator.functional_warmup(warmup)
    bus = EventBus()
    log = _EventLog(bus)
    simulator.attach_obs(bus)
    rows: List[TraceRow] = []
    squashed_uids: List[int] = []
    captured = 0
    capture_floor_uid: Optional[int] = None

    def capturing() -> bool:
        return simulator.retired > skip and captured < instructions

    def hook(inst) -> None:
        nonlocal captured, capture_floor_uid
        if not capturing():
            return
        captured += 1
        if capture_floor_uid is None:
            capture_floor_uid = inst.uid
        rows.append(
            TraceRow(
                uid=inst.uid,
                thread=inst.thread,
                opclass=inst.op.opclass.value,
                pc=inst.op.pc,
                fetch=inst.fetch_cycle,
                rename=inst.rename_cycle,
                insert=inst.insert_cycle,
                issue=inst.issue_cycle,
                exec_start=inst.exec_start_cycle,
                complete=inst.complete_cycle,
                retire=inst.retire_cycle,
                issue_count=inst.issue_count,
                issues=tuple(log.issues.get(inst.uid, ())),
                squashes=tuple(log.squashes.get(inst.uid, ())),
            )
        )

    def on_squash(event: SquashEvent) -> None:
        if capturing():
            squashed_uids.append(event.uid)

    simulator.retire_hook = hook
    if include_squashed:
        bus.subscribe(SquashEvent, on_squash)
    simulator.run(skip + instructions + 64)
    rows = rows[:instructions]
    if include_squashed and capture_floor_uid is not None:
        for uid in squashed_uids:
            if uid < capture_floor_uid:
                continue
            row = log.squashed_row(uid)
            if row is not None:
                rows.append(row)
        rows.sort(key=lambda r: r.uid)
    return rows


def render_pipetrace(rows: List[TraceRow], width: int = 100) -> str:
    """Render trace rows as an aligned text Gantt chart."""
    if not rows:
        return "(empty trace)"
    origin = min(row.fetch for row in rows)
    span = max(row.end for row in rows) - origin + 1
    lines = [
        f"pipetrace: {len(rows)} instructions, cycles "
        f"{origin}..{origin + span - 1}"
        + (" (clipped)" if span > width else ""),
        "legend: F fetch  R rename  Q insert  i reissued issue  "
        "I issue  - IQ->EX  X execute  C complete  T retire  s squash",
        "",
    ]
    for row in rows:
        chart = [" "] * min(span, width)

        def mark(cycle: int, char: str) -> None:
            if cycle < 0:
                return
            offset = cycle - origin
            if 0 <= offset < len(chart):
                # later stages overwrite idle fillers, never real marks
                if chart[offset] in (" ", "."):
                    chart[offset] = char

        for start, end in ((row.fetch, row.end),):
            for cycle in range(start, min(end, origin + len(chart))):
                mark(cycle, ".")
        if row.issue >= 0 and row.exec_start >= 0:
            for cycle in range(row.issue, row.exec_start):
                mark(cycle, "-")
        mark(row.fetch, "F")
        mark(row.rename, "R")
        mark(row.insert, "Q")
        for cycle in row.issues[:-1]:
            mark(cycle, "i")
        mark(row.issue, "I")
        mark(row.exec_start, "X")
        mark(row.complete, "C")
        mark(row.retire, "T")
        for cycle in row.squashes:
            mark(cycle, "s")
        notes = []
        if row.issue_count > 1:
            notes.append(f"issues={row.issue_count}")
        if row.squashed:
            notes.append("squashed")
        suffix = f" ({', '.join(notes)})" if notes else ""
        lines.append(
            f"#{row.uid:<7d} t{row.thread} {row.opclass:<9s} "
            f"{''.join(chart)}{suffix}"
        )
    return "\n".join(lines)
