"""Plain-text table and series rendering for experiment output."""

from __future__ import annotations

from typing import List, Sequence, Tuple


def format_heading(title: str) -> str:
    """A section heading with an underline."""
    return f"{title}\n{'=' * len(title)}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    align_first_left: bool = True,
) -> str:
    """Render rows as an aligned monospace table."""
    table: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
        table.append([str(cell) for cell in row])
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(table):
        cells = []
        for i, cell in enumerate(row):
            if i == 0 and align_first_left:
                cells.append(cell.ljust(widths[i]))
            else:
                cells.append(cell.rjust(widths[i]))
        lines.append("  ".join(cells))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_series(points: Sequence[Tuple[float, float]], label: str = "") -> str:
    """Render (x, y) pairs as an indented two-column listing."""
    lines = [label] if label else []
    lines.extend(f"  {x:>8.1f}  {y:>8.3f}" for x, y in points)
    return "\n".join(lines)
