"""Scalar metrics used across experiments."""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence


def speedup(experiment_ipc: float, baseline_ipc: float) -> float:
    """IPC ratio of experiment to baseline (1.0 = equal performance)."""
    if baseline_ipc <= 0:
        raise ValueError("baseline IPC must be positive")
    return experiment_ipc / baseline_ipc


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean — the conventional aggregate for speedups."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


#: Placeholder rendered for cells whose simulation failed (the harness's
#: graceful-degradation path: partial figures instead of aborted runs).
MISSING = "n/a"


def percent(value: Optional[float], digits: int = 1) -> str:
    """Render a ratio as a percent string (0.153 -> '15.3%').

    ``None`` — a cell lost to a simulation failure — renders as
    :data:`MISSING`.
    """
    if value is None:
        return MISSING
    return f"{value * 100:.{digits}f}%"


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0 for empty input)."""
    if not values:
        return 0.0
    return sum(values) / len(values)
