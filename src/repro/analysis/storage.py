"""Persisting experiment results as JSON.

Experiments are slow enough that results deserve to be saved and
compared across code revisions.  ``save_summary``/``load_summary`` wrap
a stable, versioned JSON layout for :class:`~repro.core.SimResult`
summaries and arbitrary figure tables.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Union

from repro.core import SimResult

#: Bump when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1

PathLike = Union[str, pathlib.Path]


def result_summary(result: SimResult) -> Dict[str, Any]:
    """A JSON-serialisable summary of one simulation result."""
    stats = result.stats
    return {
        "workload": result.workload,
        "config": result.config.label,
        "seed": result.seed,
        "ipc": result.ipc,
        "cycles": stats.cycles,
        "retired": stats.retired,
        "summary": stats.summary(),
        "operand_sources": {
            source.value: count
            for source, count in stats.operand_reads.items()
        },
        "reissues": {
            cause.value: count for cause, count in stats.reissues.items()
        },
        "memdep_traps": stats.memdep_traps,
    }


def save_summary(
    path: PathLike,
    results: List[SimResult],
    extra: Dict[str, Any] = None,
) -> None:
    """Write result summaries (plus optional figure tables) to ``path``."""
    payload = {
        "schema": SCHEMA_VERSION,
        "results": [result_summary(r) for r in results],
        "extra": extra or {},
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_summary(path: PathLike) -> Dict[str, Any]:
    """Load a summary file, validating the schema version."""
    payload = json.loads(pathlib.Path(path).read_text())
    schema = payload.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported results schema {schema!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    return payload


def compare_ipc(
    old: Dict[str, Any], new: Dict[str, Any]
) -> List[Dict[str, Any]]:
    """IPC deltas between two summary payloads, matched by workload+config."""
    def key(entry: Dict[str, Any]) -> tuple:
        return (entry["workload"], entry["config"], entry["seed"])

    old_index = {key(e): e for e in old["results"]}
    deltas = []
    for entry in new["results"]:
        match = old_index.get(key(entry))
        if match is None or match["ipc"] == 0:
            continue
        deltas.append(
            {
                "workload": entry["workload"],
                "config": entry["config"],
                "old_ipc": match["ipc"],
                "new_ipc": entry["ipc"],
                "ratio": entry["ipc"] / match["ipc"],
            }
        )
    return deltas
