"""Analysis and reporting utilities.

Metrics (speedups, rates), empirical CDFs (Figure 6), and plain-text
table/figure rendering shared by the experiment drivers, benchmarks and
examples.
"""

from repro.analysis.metrics import (
    MISSING,
    geometric_mean,
    percent,
    speedup,
)
from repro.analysis.cdf import EmpiricalCDF
from repro.analysis.pipetrace import TraceRow, collect_trace, render_pipetrace
from repro.analysis.report import (
    format_heading,
    format_table,
    render_series,
)

__all__ = [
    "MISSING",
    "speedup",
    "geometric_mean",
    "percent",
    "EmpiricalCDF",
    "format_table",
    "format_heading",
    "render_series",
    "TraceRow",
    "collect_trace",
    "render_pipetrace",
]
